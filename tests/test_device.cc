/**
 * @file
 * Unit tests for the Device: dispatcher, streams, SM-centric
 * placement restrictions, and kernel completion.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "gpu/block.hh"
#include "gpu/device.hh"

using namespace vp;

namespace {

ResourceUsage
regs(int r)
{
    ResourceUsage u;
    u.regsPerThread = r;
    return u;
}

WorkSpec
work(double insts, double warps = 8.0)
{
    WorkSpec w;
    w.warpInsts = insts;
    w.warps = warps;
    w.memRatio = 0.0;
    return w;
}

/** A kernel whose blocks run one slice of work then exit. */
std::shared_ptr<Kernel>
simpleKernel(const std::string& name, int grid, double insts,
             std::vector<int>* sm_trace = nullptr)
{
    auto k = std::make_shared<Kernel>(
        name, regs(32), 256, grid,
        [insts, sm_trace](BlockContext& ctx) {
            if (sm_trace)
                sm_trace->push_back(ctx.smId());
            ctx.exec(work(insts), [&ctx] { ctx.exit(); });
        });
    return k;
}

struct Fixture
{
    Simulator sim;
    Device dev{sim, DeviceConfig::k20c()};
};

} // namespace

TEST(Device, RunsASimpleKernelToCompletion)
{
    Fixture f;
    bool completed = false;
    auto k = simpleKernel("k", 4, 100.0);
    k->notifyOnComplete([&] { completed = true; });
    f.dev.launch(f.dev.defaultStream(), k);
    f.sim.run();
    EXPECT_TRUE(completed);
    EXPECT_EQ(k->blocksExited(), 4);
    EXPECT_TRUE(f.dev.idle());
}

TEST(Device, BlocksSpreadAcrossSms)
{
    Fixture f;
    std::vector<int> sms;
    f.dev.launch(f.dev.defaultStream(),
                 simpleKernel("k", 13, 100.0, &sms));
    f.sim.run();
    std::set<int> unique(sms.begin(), sms.end());
    EXPECT_EQ(unique.size(), 13u); // one block per SM, round robin
}

TEST(Device, AllowedSmsRestrictPlacement)
{
    Fixture f;
    std::vector<int> sms;
    auto k = simpleKernel("bound", 6, 100.0, &sms);
    k->setAllowedSms({2, 5});
    f.dev.launch(f.dev.defaultStream(), k);
    f.sim.run();
    ASSERT_EQ(sms.size(), 6u);
    for (int s : sms)
        EXPECT_TRUE(s == 2 || s == 5);
}

TEST(Device, SameStreamKernelsSerialize)
{
    Fixture f;
    std::vector<std::string> order;
    auto a = simpleKernel("a", 2, 1000.0);
    auto b = simpleKernel("b", 2, 10.0);
    a->notifyOnComplete([&] { order.push_back("a"); });
    b->notifyOnComplete([&] { order.push_back("b"); });
    f.dev.launch(f.dev.defaultStream(), a);
    f.dev.launch(f.dev.defaultStream(), b);
    f.sim.run();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], "a"); // b waits for a despite being shorter
}

TEST(Device, DifferentStreamsRunConcurrently)
{
    Fixture f;
    Tick b_done = -1.0;
    auto a = simpleKernel("a", 2, 100000.0);
    auto b = simpleKernel("b", 2, 10.0);
    b->notifyOnComplete([&] { b_done = f.sim.now(); });
    f.dev.launch(f.dev.defaultStream(), a);
    f.dev.launch(f.dev.createStream(), b);
    f.sim.run();
    // b finished long before the end of the run (a is much longer).
    EXPECT_GT(b_done, 0.0);
    EXPECT_LT(b_done, f.sim.now() / 2.0);
}

TEST(Device, ResourcePressureLimitsConcurrentBlocks)
{
    Fixture f;
    // 255-reg blocks: only 1 resident per SM, so peak <= numSms.
    auto k = std::make_shared<Kernel>(
        "fat", regs(255), 256, 26,
        [](BlockContext& ctx) {
            ctx.exec(work(1000.0), [&ctx] { ctx.exit(); });
        });
    f.dev.launch(f.dev.defaultStream(), k);
    f.sim.run();
    EXPECT_EQ(k->blocksExited(), 26);
    EXPECT_LE(f.dev.stats().peakResidentBlocks, 13);
}

TEST(Device, SecondWaveDispatchedAfterExits)
{
    Fixture f;
    // Grid of 100 blocks, but at most 13 resident at a time: all must
    // still run to completion through refills.
    auto k = std::make_shared<Kernel>(
        "waves", regs(255), 256, 100,
        [](BlockContext& ctx) {
            ctx.exec(work(50.0), [&ctx] { ctx.exit(); });
        });
    f.dev.launch(f.dev.defaultStream(), k);
    f.sim.run();
    EXPECT_EQ(k->blocksExited(), 100);
}

TEST(Device, StreamIdleCallbackFires)
{
    Fixture f;
    bool idle = false;
    f.dev.launch(f.dev.defaultStream(), simpleKernel("k", 2, 100.0));
    f.dev.whenStreamIdle(f.dev.defaultStream(), [&] { idle = true; });
    f.sim.run();
    EXPECT_TRUE(idle);
}

TEST(Device, DeviceIdleCallbackWaitsForAllStreams)
{
    Fixture f;
    Tick idle_at = -1.0;
    Tick long_done = -1.0;
    auto a = simpleKernel("a", 2, 50000.0);
    a->notifyOnComplete([&] { long_done = f.sim.now(); });
    f.dev.launch(f.dev.defaultStream(), a);
    f.dev.launch(f.dev.createStream(), simpleKernel("b", 2, 10.0));
    f.dev.whenDeviceIdle([&] { idle_at = f.sim.now(); });
    f.sim.run();
    EXPECT_GE(idle_at, long_done);
}

TEST(Device, IdleCallbackOnAlreadyIdleDeviceFires)
{
    Fixture f;
    bool fired = false;
    f.dev.whenDeviceIdle([&] { fired = true; });
    f.sim.run();
    EXPECT_TRUE(fired);
}

TEST(Device, CountsLaunches)
{
    Fixture f;
    f.dev.launch(f.dev.defaultStream(), simpleKernel("a", 1, 10.0));
    f.dev.launch(f.dev.defaultStream(), simpleKernel("b", 1, 10.0));
    f.sim.run();
    EXPECT_EQ(f.dev.stats().kernelLaunches, 2u);
    EXPECT_EQ(f.dev.stats().blocksDispatched, 2u);
}

TEST(Device, BlockDelayOccupiesWithoutThroughput)
{
    Fixture f;
    Tick done = -1.0;
    auto k = std::make_shared<Kernel>(
        "poll", regs(32), 256, 1,
        [&](BlockContext& ctx) {
            ctx.delay(500.0, [&ctx, &done] {
                done = ctx.sim().now();
                ctx.exit();
            });
        });
    f.dev.launch(f.dev.defaultStream(), k);
    f.sim.run();
    EXPECT_NEAR(done, f.dev.config().blockStartCycles + 500.0, 1e-6);
}

TEST(Device, PersistentStyleBlocksRetreatOnWrongSm)
{
    Fixture f;
    // A kernel that retreats (exits immediately) unless on SM 3,
    // modeling the filling-retreating check.
    int stayed = 0;
    auto k = std::make_shared<Kernel>(
        "retreat", regs(32), 256, 13,
        [&](BlockContext& ctx) {
            if (ctx.smId() != 3) {
                ctx.delay(20.0, [&ctx] { ctx.exit(); });
            } else {
                ++stayed;
                ctx.exec(work(200.0), [&ctx] { ctx.exit(); });
            }
        });
    f.dev.launch(f.dev.defaultStream(), k);
    f.sim.run();
    EXPECT_GE(stayed, 1);
    EXPECT_EQ(k->blocksExited(), 13);
}

/**
 * @file
 * Device-failure failover tests: scripted whole-device kills and
 * link fail/degrade events against multi-device groups. Covers the
 * re-homing policy, in-flight transfer redelivery, link dead-letter
 * conservation, eager target validation, outcome semantics
 * (Degraded), and bit-identical rerun determinism of every failover
 * scenario.
 */

#include <gtest/gtest.h>

#include "apps/registry.hh"
#include "core/engine.hh"
#include "core/recovery.hh"
#include "core/shard.hh"
#include "sim/fault.hh"

using namespace vp;

namespace {

DeviceGroupConfig
groupOf(int n)
{
    return DeviceGroupConfig::homogeneous(
        DeviceConfig::byName("gtx1080"), n);
}

/** Per-stage processed-item counts (the conservation fingerprint). */
std::vector<std::uint64_t>
stageItems(const RunResult& r)
{
    std::vector<std::uint64_t> v;
    for (const StageRunStats& s : r.stages)
        v.push_back(s.items + s.deadLettered);
    return v;
}

FaultPlan
killDeviceAt(int device, Tick time)
{
    FaultPlan fp;
    DeviceFaultEvent e;
    e.time = time;
    e.device = device;
    fp.deviceEvents.push_back(e);
    return fp;
}

} // namespace

TEST(Failover, PolicyPicksLowestLoadSurvivorWithStableTieBreak)
{
    std::vector<char> alive = {1, 0, 1, 1};
    std::vector<std::int64_t> loads = {50, 0, 10, 90};
    EXPECT_EQ(FailoverPolicy::rehome(3, loads, alive), 2);

    // Ties resolve by the splitmix64 hash of (stage, device): the
    // choice is stable across reruns and differs across stages so
    // tied survivors share the adopted load.
    std::vector<std::int64_t> tied = {5, 5, 5, 5};
    std::vector<char> all = {1, 1, 1, 1};
    int first = FailoverPolicy::rehome(0, tied, all);
    EXPECT_EQ(FailoverPolicy::rehome(0, tied, all), first);
    bool differs = false;
    for (int s = 1; s < 32 && !differs; ++s)
        differs = FailoverPolicy::rehome(s, tied, all) != first;
    EXPECT_TRUE(differs) << "tie-break never varies with the stage";

    std::vector<char> nobody = {0, 0};
    std::vector<std::int64_t> l2 = {0, 0};
    EXPECT_THROW(FailoverPolicy::rehome(0, l2, nobody), FatalError);
}

TEST(Failover, ValidateTargetsRejectsOutOfRangeScripts)
{
    auto app = makeApp("pyramid", AppScale::Small);
    PipelineConfig cfg = makeMegakernelConfig(app->pipeline());
    ShardPlan plan =
        ShardPlan::replicateAll(app->pipeline());

    auto expectConfig = [&](const FaultPlan& fp) {
        Engine group(groupOf(2));
        group.setFaultPlan(fp);
        try {
            group.runSharded(*app, cfg, plan);
            FAIL() << "out-of-range fault target was accepted";
        } catch (const FatalError& e) {
            EXPECT_EQ(e.code(), ErrorCode::Config);
        }
    };

    expectConfig(killDeviceAt(5, 100.0)); // no device 5 in a pair

    FaultPlan badSm;
    SmFaultEvent sk;
    sk.device = 1;
    sk.sm = 999; // gtx1080 has 20 SMs
    badSm.smEvents.push_back(sk);
    expectConfig(badSm);

    FaultPlan badLink;
    LinkFaultEvent lf;
    lf.src = 0;
    lf.dst = 3; // no device 3
    badLink.linkEvents.push_back(lf);
    expectConfig(badLink);

    FaultPlan selfLink;
    LinkFaultEvent sl;
    sl.src = 1;
    sl.dst = 1; // a device has no link to itself
    selfLink.linkEvents.push_back(sl);
    expectConfig(selfLink);
}

TEST(Failover, DeviceFaultPlanRejectedOnSingleDeviceEngine)
{
    auto app = makeApp("pyramid", AppScale::Small);
    PipelineConfig cfg = makeMegakernelConfig(app->pipeline());
    Engine single(DeviceConfig::byName("gtx1080"));
    single.setFaultPlan(killDeviceAt(0, 100.0));
    try {
        single.run(*app, cfg);
        FAIL() << "device-kill plan accepted on a single device";
    } catch (const FatalError& e) {
        EXPECT_EQ(e.code(), ErrorCode::Config);
    }
}

TEST(Failover, KillingPinnedDeviceMidFlightDegradesAndConserves)
{
    // The acceptance scenario: a 2-device raster run with pinned
    // stage groups loses device 1 mid-flight. The run must finish
    // as Degraded with every item accounted for, and rerunning the
    // exact scenario must be bit-identical.
    auto app = makeApp("raster", AppScale::Small);
    Pipeline& pipe = app->pipeline();
    PipelineConfig cfg =
        makeCoarseConfig(pipe, DeviceConfig::byName("gtx1080"));
    ShardPlan plan = ShardPlan::pinnedRoundRobin(cfg, pipe, 2);
    ASSERT_TRUE(plan.anyPinned());

    Engine clean(groupOf(2));
    RunResult base = clean.runSharded(*app, cfg, plan);
    ASSERT_TRUE(base.completed) << base.failureReason;

    // 24000 lands just after a transfer burst has been delivered
    // into device 1's queue: the kill captures resident items via
    // evacuation (probed; the assertion below guards drift).
    Engine group(groupOf(2));
    group.setFaultPlan(killDeviceAt(1, 24000.0));
    group.setRecovery(RecoveryConfig{});
    RunResult r1 = group.runSharded(*app, cfg, plan);
    RunResult r2 = group.runSharded(*app, cfg, plan);

    EXPECT_EQ(r1.outcome, RunOutcome::Degraded)
        << runOutcomeName(r1.outcome) << "\n" << r1.failureReason;
    EXPECT_EQ(r1.faults.devicesFailed, 1);
    EXPECT_GT(r1.faults.stagesRehomed, 0);
    EXPECT_GT(r1.faults.itemsEvacuated, 0u)
        << "device 1's queue was empty at kill time; move the kill";
    ASSERT_EQ(r1.shardDevices.size(), 2u);
    EXPECT_TRUE(r1.shardDevices[1].failed);
    EXPECT_FALSE(r1.shardDevices[0].failed);
    EXPECT_EQ(r1.shardDevices[0].stagesRehomedIn,
              r1.faults.stagesRehomed);

    // Conservation: the seed stage saw every seeded item (processed
    // or structurally dead-lettered), exactly like the clean run.
    EXPECT_EQ(stageItems(r1)[0], stageItems(base)[0]);

    // Bit-identical rerun: same fingerprint, same virtual clock.
    EXPECT_EQ(stageItems(r1), stageItems(r2));
    EXPECT_EQ(r1.cycles, r2.cycles);
    EXPECT_EQ(r1.simEvents, r2.simEvents);
    EXPECT_EQ(r1.faults.transfersRedelivered,
              r2.faults.transfersRedelivered);
    EXPECT_EQ(r1.faults.itemsEvacuated, r2.faults.itemsEvacuated);
}

TEST(Failover, InFlightTransferToDeadDestinationIsRedelivered)
{
    // Satellite: the destination device of in-flight transfers dies
    // while payloads are still on the wire. The arrival handler must
    // buffer them through the new home's recovery manager instead of
    // delivering into a dead queue — visible as a non-zero
    // transfersRedelivered count — and the group must still drain.
    auto app = makeApp("raster", AppScale::Small);
    Pipeline& pipe = app->pipeline();
    PipelineConfig cfg =
        makeCoarseConfig(pipe, DeviceConfig::byName("gtx1080"));
    ShardPlan plan = ShardPlan::pinnedRoundRobin(cfg, pipe, 2);

    // 23500 lands inside a transfer burst while payloads are still
    // serializing on the link (probed; the assertion below guards
    // drift).
    Engine group(groupOf(2));
    group.setFaultPlan(killDeviceAt(1, 23500.0));
    group.setRecovery(RecoveryConfig{});
    RunResult r = group.runSharded(*app, cfg, plan);

    EXPECT_EQ(r.outcome, RunOutcome::Degraded)
        << runOutcomeName(r.outcome) << "\n" << r.failureReason;
    EXPECT_GT(r.faults.transfersRedelivered, 0u)
        << "no transfer was in flight at kill time; move the kill";
    // Redelivered items are not lost: the dead-letter ledger only
    // holds structural losses (failed links, retry exhaustion), and
    // redelivery alone must not add to it.
    RunResult rr = group.runSharded(*app, cfg, plan);
    EXPECT_EQ(stageItems(r), stageItems(rr));
    EXPECT_EQ(r.cycles, rr.cycles);
}

TEST(Failover, ReplicatedPlanSurvivesDeviceKill)
{
    auto app = makeApp("pyramid", AppScale::Small);
    PipelineConfig cfg = makeMegakernelConfig(app->pipeline());
    ShardPlan plan = ShardPlan::replicateAll(app->pipeline());

    Engine group(groupOf(2));
    group.setFaultPlan(killDeviceAt(0, 20000.0));
    group.setRecovery(RecoveryConfig{});
    RunResult r = group.runSharded(*app, cfg, plan);

    EXPECT_EQ(r.outcome, RunOutcome::Degraded)
        << runOutcomeName(r.outcome) << "\n" << r.failureReason;
    EXPECT_EQ(r.faults.devicesFailed, 1);
    // Replicated stages have no pinned home to move.
    EXPECT_EQ(r.faults.stagesRehomed, 0);
    EXPECT_TRUE(r.shardDevices[0].failed);
}

TEST(Failover, FailedLinkDeadLettersWithExactLedger)
{
    // Both endpoints stay alive but the 0->1 path fails before any
    // transfer: every cross-device push toward device 1 is lost in a
    // structured way, the run drains, and the ledger matches the
    // stage stats.
    auto app = makeApp("raster", AppScale::Small);
    Pipeline& pipe = app->pipeline();
    PipelineConfig cfg =
        makeCoarseConfig(pipe, DeviceConfig::byName("gtx1080"));
    ShardPlan plan = ShardPlan::pinnedRoundRobin(cfg, pipe, 2);

    FaultPlan fp;
    LinkFaultEvent lf;
    lf.time = 0.0;
    lf.src = 0;
    lf.dst = 1;
    lf.kind = LinkFaultEvent::Kind::Fail;
    fp.linkEvents.push_back(lf);

    Engine group(groupOf(2));
    group.setFaultPlan(fp);
    group.setRecovery(RecoveryConfig{});
    RunResult r1 = group.runSharded(*app, cfg, plan);
    RunResult r2 = group.runSharded(*app, cfg, plan);

    EXPECT_EQ(r1.outcome, RunOutcome::Degraded)
        << runOutcomeName(r1.outcome) << "\n" << r1.failureReason;
    EXPECT_EQ(r1.faults.linksFailed, 1);
    EXPECT_GT(r1.faults.deadLettered, 0u);
    EXPECT_EQ(stageItems(r1), stageItems(r2));
    EXPECT_EQ(r1.cycles, r2.cycles);
}

TEST(Failover, DegradedLinkCompletesAllWork)
{
    // A slow link loses nothing: all items arrive, the run merely
    // takes longer than the clean baseline and reports Degraded.
    auto app = makeApp("raster", AppScale::Small);
    Pipeline& pipe = app->pipeline();
    PipelineConfig cfg =
        makeCoarseConfig(pipe, DeviceConfig::byName("gtx1080"));
    ShardPlan plan = ShardPlan::pinnedRoundRobin(cfg, pipe, 2);

    Engine clean(groupOf(2));
    RunResult base = clean.runSharded(*app, cfg, plan);
    ASSERT_TRUE(base.completed) << base.failureReason;

    FaultPlan fp;
    LinkFaultEvent lf;
    lf.time = 0.0;
    lf.src = 0;
    lf.dst = 1;
    lf.kind = LinkFaultEvent::Kind::Degrade;
    lf.factor = 0.25;
    fp.linkEvents.push_back(lf);

    Engine group(groupOf(2));
    group.setFaultPlan(fp);
    RunResult r = group.runSharded(*app, cfg, plan);

    EXPECT_EQ(r.outcome, RunOutcome::Degraded)
        << runOutcomeName(r.outcome) << "\n" << r.failureReason;
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.faults.linksDegraded, 1);
    EXPECT_EQ(r.faults.deadLettered, 0u);
    EXPECT_EQ(stageItems(r), stageItems(base));
    EXPECT_GE(r.cycles, base.cycles);
}

TEST(Failover, ThreeDeviceGroupSurvivesOneKillWithLoadAwareRehome)
{
    auto app = makeApp("raster", AppScale::Small);
    Pipeline& pipe = app->pipeline();
    PipelineConfig cfg =
        makeCoarseConfig(pipe, DeviceConfig::byName("gtx1080"));
    ShardPlan plan = ShardPlan::pinnedRoundRobin(cfg, pipe, 3);

    Engine group(groupOf(3));
    group.setFaultPlan(killDeviceAt(1, 40000.0));
    group.setRecovery(RecoveryConfig{});
    RunResult r1 = group.runSharded(*app, cfg, plan);
    RunResult r2 = group.runSharded(*app, cfg, plan);

    EXPECT_EQ(r1.outcome, RunOutcome::Degraded)
        << runOutcomeName(r1.outcome) << "\n" << r1.failureReason;
    ASSERT_EQ(r1.shardDevices.size(), 3u);
    EXPECT_TRUE(r1.shardDevices[1].failed);
    int adoptedElsewhere = r1.shardDevices[0].stagesRehomedIn
        + r1.shardDevices[2].stagesRehomedIn;
    EXPECT_EQ(adoptedElsewhere, r1.faults.stagesRehomed);
    EXPECT_EQ(stageItems(r1), stageItems(r2));
    EXPECT_EQ(r1.cycles, r2.cycles);
}

TEST(Failover, EmptyPlanLeavesShardedRunIdenticalToNoPlan)
{
    // Arming the fault machinery with an empty plan must not perturb
    // the event stream: same fingerprint, same clock, same event
    // count as a run with no plan at all.
    auto app = makeApp("pyramid", AppScale::Small);
    Pipeline& pipe = app->pipeline();
    PipelineConfig cfg =
        makeCoarseConfig(pipe, DeviceConfig::byName("gtx1080"));
    ShardPlan plan = ShardPlan::pinnedRoundRobin(cfg, pipe, 2);

    Engine bare(groupOf(2));
    RunResult r0 = bare.runSharded(*app, cfg, plan);

    Engine armed(groupOf(2));
    armed.setFaultPlan(FaultPlan{});
    armed.setRecovery(RecoveryConfig{});
    RunResult r1 = armed.runSharded(*app, cfg, plan);

    EXPECT_EQ(stageItems(r0), stageItems(r1));
    EXPECT_EQ(r0.cycles, r1.cycles);
    EXPECT_EQ(r0.simEvents, r1.simEvents);
}

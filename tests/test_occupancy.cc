/**
 * @file
 * Unit tests for the occupancy calculator, including the exact
 * register-pressure scenarios quoted in the VersaPipe paper (sec 8.3).
 */

#include <gtest/gtest.h>

#include "gpu/occupancy.hh"

using namespace vp;

namespace {

ResourceUsage
regs(int r)
{
    ResourceUsage u;
    u.regsPerThread = r;
    u.smemPerBlock = 0;
    return u;
}

} // namespace

TEST(Occupancy, BlockCapLimitsLightKernels)
{
    auto cfg = DeviceConfig::k20c();
    auto r = maxBlocksPerSm(cfg, regs(8), 64);
    EXPECT_EQ(r.blocksPerSm, cfg.maxBlocksPerSm);
    EXPECT_EQ(r.limiter, OccupancyLimiter::Blocks);
}

TEST(Occupancy, ThreadLimit)
{
    auto cfg = DeviceConfig::k20c();
    auto r = maxBlocksPerSm(cfg, regs(8), 1024);
    EXPECT_EQ(r.blocksPerSm, 2); // 2048 threads / 1024
    EXPECT_EQ(r.limiter, OccupancyLimiter::Threads);
}

TEST(Occupancy, SharedMemLimit)
{
    auto cfg = DeviceConfig::k20c();
    ResourceUsage u = regs(16);
    u.smemPerBlock = 20000;
    auto r = maxBlocksPerSm(cfg, u, 128);
    EXPECT_EQ(r.blocksPerSm, 2); // 49152 / 20000
    EXPECT_EQ(r.limiter, OccupancyLimiter::SharedMem);
}

// Paper, sec 4.2.1: "each thread of the Reyes program in Megakernel
// uses 255 registers and each SM can only launch 1 thread block".
TEST(Occupancy, ReyesMegakernel255RegsGivesOneBlock)
{
    auto cfg = DeviceConfig::k20c();
    auto r = maxBlocksPerSm(cfg, regs(255), 256);
    EXPECT_EQ(r.blocksPerSm, 1);
    EXPECT_EQ(r.limiter, OccupancyLimiter::Registers);
}

// Paper, sec 8.3: Reyes VersaPipe kernels use 111 / 255 / 61 regs;
// split gets 2 blocks/SM, dice 1, shade 4.
TEST(Occupancy, ReyesPerStageRegisterCounts)
{
    auto cfg = DeviceConfig::k20c();
    EXPECT_EQ(maxBlocksPerSm(cfg, regs(111), 256).blocksPerSm, 2);
    EXPECT_EQ(maxBlocksPerSm(cfg, regs(255), 256).blocksPerSm, 1);
    EXPECT_EQ(maxBlocksPerSm(cfg, regs(61), 256).blocksPerSm, 4);
}

// Paper, sec 8.3: Face Detection Megakernel uses 87 regs -> 2 blocks;
// per-stage kernels use 56/69/56/61/37 -> at least 3, at most 6.
TEST(Occupancy, FaceDetectionRegisterCounts)
{
    auto cfg = DeviceConfig::k20c();
    EXPECT_EQ(maxBlocksPerSm(cfg, regs(87), 256).blocksPerSm, 2);
    int counts[] = {56, 69, 56, 61, 37};
    int lo = 100, hi = 0;
    for (int c : counts) {
        int b = maxBlocksPerSm(cfg, regs(c), 256).blocksPerSm;
        lo = std::min(lo, b);
        hi = std::max(hi, b);
    }
    EXPECT_EQ(lo, 3);
    EXPECT_EQ(hi, 6);
}

TEST(Occupancy, ZeroWhenBlockCannotFitAtAll)
{
    auto cfg = DeviceConfig::k20c();
    auto r = maxBlocksPerSm(cfg, regs(300), 1024); // 307k regs needed
    EXPECT_EQ(r.blocksPerSm, 0);
}

TEST(Occupancy, InvalidThreadCountThrows)
{
    auto cfg = DeviceConfig::k20c();
    EXPECT_THROW(maxBlocksPerSm(cfg, regs(32), 0), FatalError);
}

TEST(Occupancy, OccupancyFractionComputed)
{
    auto cfg = DeviceConfig::k20c();
    auto r = maxBlocksPerSm(cfg, regs(255), 256);
    EXPECT_DOUBLE_EQ(r.occupancy, 256.0 / 2048.0);
}

TEST(Occupancy, Gtx1080AllowsMoreBlocks)
{
    auto k20 = DeviceConfig::k20c();
    auto p100 = DeviceConfig::gtx1080();
    auto a = maxBlocksPerSm(k20, regs(16), 64);
    auto b = maxBlocksPerSm(p100, regs(16), 64);
    EXPECT_GT(b.blocksPerSm, a.blocksPerSm);
}

TEST(Occupancy, MergedResourceUsageTakesMaxRegsSumCode)
{
    ResourceUsage a = regs(111);
    a.codeBytes = 10000;
    ResourceUsage b = regs(255);
    b.codeBytes = 20000;
    ResourceUsage m = a.mergedWith(b);
    EXPECT_EQ(m.regsPerThread, 255);
    EXPECT_EQ(m.codeBytes, 30000);
}

class OccupancyMonotone : public ::testing::TestWithParam<int>
{};

// Property: occupancy is non-increasing in register usage.
TEST_P(OccupancyMonotone, NonIncreasingInRegisters)
{
    auto cfg = DeviceConfig::k20c();
    int r = GetParam();
    auto low = maxBlocksPerSm(cfg, regs(r), 256);
    auto high = maxBlocksPerSm(cfg, regs(r + 8), 256);
    EXPECT_GE(low.blocksPerSm, high.blocksPerSm);
}

INSTANTIATE_TEST_SUITE_P(RegisterSweep, OccupancyMonotone,
                         ::testing::Values(8, 16, 24, 32, 48, 64, 96,
                                           128, 160, 192, 224, 255));

/**
 * @file
 * Unit tests for the pipeline-completion counter.
 */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "queueing/pending_counter.hh"

using namespace vp;

TEST(PendingCounter, NotDoneBeforeAnyWork)
{
    PendingCounter c;
    EXPECT_FALSE(c.done());
    EXPECT_EQ(c.value(), 0);
}

TEST(PendingCounter, DoneAfterDrain)
{
    PendingCounter c;
    c.add(3);
    EXPECT_FALSE(c.done());
    c.sub(2);
    EXPECT_FALSE(c.done());
    c.sub(1);
    EXPECT_TRUE(c.done());
}

TEST(PendingCounter, RecursiveGrowthSupported)
{
    PendingCounter c;
    c.add(1);
    c.add(5); // item spawned more items
    c.sub(1);
    c.sub(5);
    EXPECT_TRUE(c.done());
}

TEST(PendingCounter, UnderflowPanics)
{
    PendingCounter c;
    c.add(1);
    EXPECT_THROW(c.sub(2), PanicError);
}

TEST(PendingCounter, DrainCallbackFiresOnce)
{
    PendingCounter c;
    int fired = 0;
    c.add(2);
    c.notifyOnDrain([&] { ++fired; });
    c.sub(1);
    EXPECT_EQ(fired, 0);
    c.sub(1);
    EXPECT_EQ(fired, 1);
    // Refilling and draining again does not refire old callbacks.
    c.add(1);
    c.sub(1);
    EXPECT_EQ(fired, 1);
}

TEST(PendingCounter, CallbackOnAlreadyDrainedFiresImmediately)
{
    PendingCounter c;
    c.add(1);
    c.sub(1);
    bool fired = false;
    c.notifyOnDrain([&] { fired = true; });
    EXPECT_TRUE(fired);
}

TEST(PendingCounter, ResetRestoresPristineState)
{
    PendingCounter c;
    c.add(1);
    c.sub(1);
    c.reset();
    EXPECT_FALSE(c.done());
}

/**
 * @file
 * Tests of the observability layer: log-bucketed histogram boundary
 * math, tracer determinism across identical runs, the zero-cost
 * guarantee when tracing is disabled (and the passive-recording
 * guarantee when it is enabled), sampler time-series length versus
 * run length, report/trace export content, and the trace tail
 * attached to structured failure diagnostics.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "obs/obs.hh"
#include "obs/report.hh"
#include "toy_apps.hh"

using namespace vp;
using namespace vp::test;

namespace {

RunResult
runObserved(const ObsConfig& oc, int flows = 2, int perFlow = 64)
{
    LinearApp app(flows, perFlow);
    Engine engine(DeviceConfig::k20c());
    engine.setObservability(oc);
    RunResult r = engine.run(app, makeMegakernelConfig(app.pipeline()));
    EXPECT_TRUE(r.completed);
    return r;
}

// ------------------------- histogram ---------------------------- //

TEST(Histogram, BucketBoundaries)
{
    // Buckets: 0 = (-inf, 16]; i >= 1 = (16*2^(i-1), 16*2^i].
    Histogram h(16.0, 2.0);
    EXPECT_EQ(h.bucketIndex(-5.0), 0u);
    EXPECT_EQ(h.bucketIndex(0.0), 0u);
    EXPECT_EQ(h.bucketIndex(16.0), 0u);          // exactly lo
    EXPECT_EQ(h.bucketIndex(16.0000001), 1u);    // just above lo
    EXPECT_EQ(h.bucketIndex(32.0), 1u);          // exactly lo*g
    EXPECT_EQ(h.bucketIndex(32.0000001), 2u);    // just above lo*g
    EXPECT_EQ(h.bucketIndex(64.0), 2u);
    EXPECT_EQ(h.bucketIndex(1024.0), 6u);
    for (std::size_t i = 1; i < 40; ++i) {
        // Every bucket's bounds must bracket the values it indexes.
        double mid = 0.5 * (h.lowerBound(i) + h.upperBound(i));
        EXPECT_EQ(h.bucketIndex(mid), i) << "bucket " << i;
        EXPECT_EQ(h.bucketIndex(h.upperBound(i)), i) << "bucket " << i;
    }
}

TEST(Histogram, PercentilesAndMoments)
{
    Histogram h(1.0, 1.25);
    for (int i = 1; i <= 1000; ++i)
        h.add(static_cast<double>(i));
    EXPECT_EQ(h.count(), 1000u);
    EXPECT_DOUBLE_EQ(h.mean(), 500.5);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 1000.0);
    // Log buckets are coarse; percentiles land within one bucket
    // (25%) of the exact value and must be monotone.
    double p50 = h.percentile(0.50);
    double p95 = h.percentile(0.95);
    double p99 = h.percentile(0.99);
    EXPECT_NEAR(p50, 500.0, 500.0 * 0.25);
    EXPECT_NEAR(p95, 950.0, 950.0 * 0.25);
    EXPECT_NEAR(p99, 990.0, 990.0 * 0.25);
    EXPECT_LE(p50, p95);
    EXPECT_LE(p95, p99);
    EXPECT_LE(p99, h.max());
    EXPECT_GE(h.percentile(0.0), h.min());
    EXPECT_DOUBLE_EQ(h.percentile(1.0), h.max());
}

TEST(Histogram, EmptyIsWellDefined)
{
    Histogram h;
    EXPECT_TRUE(h.empty());
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
}

// ------------------------- tracer ------------------------------- //

TEST(Tracer, IdenticalRunsProduceIdenticalTraces)
{
    ObsConfig oc;
    RunResult a = runObserved(oc);
    RunResult b = runObserved(oc);
    ASSERT_TRUE(a.obs && b.obs);
    std::vector<TraceEvent> ea = a.obs->tracer.snapshot();
    std::vector<TraceEvent> eb = b.obs->tracer.snapshot();
    ASSERT_GT(ea.size(), 0u);
    ASSERT_EQ(ea.size(), eb.size());
    for (std::size_t i = 0; i < ea.size(); ++i)
        ASSERT_TRUE(ea[i] == eb[i]) << "trace diverged at event " << i;
    EXPECT_EQ(a.obs->tracer.strings(), b.obs->tracer.strings());
}

TEST(Tracer, ObservationIsPassive)
{
    // Neither a disabled tracer (null-check-only hooks) nor an
    // enabled one (records without scheduling simulation events) may
    // perturb the run: same event count, same cycle count.
    LinearApp plain(2, 64);
    Engine engine(DeviceConfig::k20c());
    RunResult base =
        engine.run(plain, makeMegakernelConfig(plain.pipeline()));

    ObsConfig off;
    off.trace = false;
    RunResult disabled = runObserved(off);
    EXPECT_EQ(base.simEvents, disabled.simEvents);
    EXPECT_DOUBLE_EQ(base.cycles, disabled.cycles);

    ObsConfig on;
    RunResult enabled = runObserved(on);
    EXPECT_EQ(base.simEvents, enabled.simEvents);
    EXPECT_DOUBLE_EQ(base.cycles, enabled.cycles);
    EXPECT_GT(enabled.obs->tracer.recorded(), 0u);
    EXPECT_EQ(disabled.obs->tracer.recorded(), 0u);
}

TEST(Tracer, RingDropsOldestButKeepsTail)
{
    ObsConfig oc;
    oc.traceCapacity = 32; // force wraparound
    RunResult r = runObserved(oc);
    ASSERT_TRUE(r.obs);
    const Tracer& t = r.obs->tracer;
    EXPECT_GT(t.dropped(), 0u);
    EXPECT_EQ(t.snapshot().size(), 32u);
    // The tail renders the most recent K events, newest last.
    std::string tail = t.tail(4);
    EXPECT_FALSE(tail.empty());
    // The run-wide span is recorded last, so it is always in the tail.
    EXPECT_NE(tail.find("run"), std::string::npos);
}

TEST(Tracer, ExportedJsonIsWellFormed)
{
    ObsConfig oc;
    RunResult r = runObserved(oc);
    std::ostringstream out;
    exportTraceJson(out, r.obs->tracer);
    std::string j = out.str();
    EXPECT_NE(j.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(j.find("\"ph\""), std::string::npos);
    EXPECT_NE(j.find("process_name"), std::string::npos);
    EXPECT_NE(j.find("kernel_launch"), std::string::npos);
    EXPECT_EQ(j.back(), '\n');
}

// ------------------------- sampler ------------------------------ //

TEST(Sampler, SeriesLengthMatchesRunLength)
{
    ObsConfig oc;
    oc.sampleIntervalCycles = 1000.0;
    RunResult r = runObserved(oc);
    ASSERT_TRUE(r.obs);
    const auto& series = r.obs->sampler.series();
    ASSERT_GE(series.size(), 2u); // acceptance: >= 2 time-series
    // Samples land at k*N for k = 1.. while k*N < run length.
    std::size_t want = 0;
    for (Tick t = 1000.0; t < r.cycles; t += 1000.0)
        ++want;
    for (const TimeSeries& ts : series) {
        EXPECT_EQ(ts.t.size(), want) << "series " << ts.name;
        EXPECT_EQ(ts.v.size(), ts.t.size()) << "series " << ts.name;
        for (std::size_t k = 0; k < ts.t.size(); ++k)
            EXPECT_DOUBLE_EQ(ts.t[k], 1000.0 * (k + 1));
    }
}

TEST(Sampler, SamplingIsPassive)
{
    LinearApp plain(2, 64);
    Engine engine(DeviceConfig::k20c());
    RunResult base =
        engine.run(plain, makeMegakernelConfig(plain.pipeline()));

    ObsConfig oc;
    oc.trace = false;
    oc.sampleIntervalCycles = 500.0; // many slice boundaries
    RunResult sampled = runObserved(oc);
    EXPECT_EQ(base.simEvents, sampled.simEvents);
    EXPECT_DOUBLE_EQ(base.cycles, sampled.cycles);
}

// ------------------------- report ------------------------------- //

TEST(Report, JsonCarriesPercentilesAndSeries)
{
    ObsConfig oc;
    oc.sampleIntervalCycles = 1000.0;
    RunResult r = runObserved(oc);
    std::ostringstream out;
    writeReportJson(out, r);
    std::string j = out.str();
    EXPECT_NE(j.find("\"p50\""), std::string::npos);
    EXPECT_NE(j.find("\"p95\""), std::string::npos);
    EXPECT_NE(j.find("\"p99\""), std::string::npos);
    EXPECT_NE(j.find("\"batch_latency_cycles\""), std::string::npos);
    EXPECT_NE(j.find("\"resident_blocks\""), std::string::npos);
    EXPECT_NE(j.find("\"occupancy\""), std::string::npos);
    EXPECT_NE(j.find("\"outcome\": \"completed\""),
              std::string::npos);

    std::ostringstream csv;
    writeTimeSeriesCsv(csv, *r.obs);
    std::string c = csv.str();
    EXPECT_EQ(c.rfind("t,", 0), 0u); // header row first
    EXPECT_NE(c.find("occupancy"), std::string::npos);
}

TEST(Report, StageHistogramsSeeEveryBatch)
{
    ObsConfig oc;
    RunResult r = runObserved(oc);
    ASSERT_TRUE(r.obs);
    ASSERT_EQ(r.obs->stageBatchCycles.size(), r.stages.size());
    for (std::size_t s = 0; s < r.stages.size(); ++s) {
        EXPECT_EQ(r.obs->stageBatchCycles[s].count(),
                  r.stages[s].batches)
            << "stage " << r.obs->stageNames[s];
    }
}

// ------------------------- failure diagnostics ------------------ //

TEST(Diagnostics, FailureReasonCarriesTraceTail)
{
    // A drain timeout long before the natural run length produces a
    // structured failure whose diagnostic embeds the flight-recorder
    // tail of the trace ring.
    LinearApp app(2, 64);
    Engine engine(DeviceConfig::k20c());
    engine.setObservability(ObsConfig{});
    RecoveryConfig rc;
    rc.watchdogIntervalCycles = 0.0;
    rc.drainTimeoutCycles = 100.0;
    engine.setRecovery(rc);
    RunResult r =
        engine.run(app, makeMegakernelConfig(app.pipeline()));
    EXPECT_FALSE(r.completed);
    EXPECT_EQ(r.outcome, RunOutcome::DrainTimeout);
    EXPECT_NE(r.failureReason.find("last trace events:"),
              std::string::npos);
    ASSERT_TRUE(r.obs);
    EXPECT_GT(r.obs->tracer.recorded(), 0u);
}

} // namespace

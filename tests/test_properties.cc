/**
 * @file
 * Property tests: PCG32-seeded random operation sequences drive the
 * queueing and interconnect primitives against independent reference
 * models. Each property runs over >= 100 seeds; a failure prints the
 * seed so the exact sequence can be replayed in isolation.
 *
 *  - WorkQueue<T> vs. a std::deque FIFO (contents, order, stats).
 *  - QueueBase::accessCost vs. a replica of the 400-cycle sliding
 *    contention window and the warp-parallel byte-movement formula.
 *  - Link::occupy vs. a busy-until FIFO arbiter reference.
 *  - Interconnect delivery ordering: per-(src,dst) transfers arrive
 *    in submission order and every transfer is delivered.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <map>
#include <vector>

#include "common/rng.hh"
#include "gpu/device_config.hh"
#include "queueing/work_queue.hh"
#include "serve/admission.hh"
#include "serve/request_source.hh"
#include "serve/serving_engine.hh"
#include "sim/interconnect.hh"
#include "sim/simulator.hh"

using namespace vp;

namespace {

constexpr std::uint64_t kSeeds = 120;

} // namespace

// ------------------------- WorkQueue ---------------------------- //

TEST(Properties, WorkQueueMatchesDequeReference)
{
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        SCOPED_TRACE("seed=" + std::to_string(seed));
        Rng rng(seed);
        WorkQueue<int> q("prop");
        std::deque<int> ref;
        std::uint64_t pushes = 0, pops = 0;
        std::size_t maxDepth = 0;
        int next = 0;

        const int ops = 200 + static_cast<int>(rng.nextBelow(200));
        for (int op = 0; op < ops; ++op) {
            switch (rng.nextBelow(8)) {
            case 0:
            case 1:
            case 2: { // push
                q.push(next);
                ref.push_back(next);
                ++next;
                ++pushes;
                maxDepth = std::max(maxDepth, ref.size());
                break;
            }
            case 3:
            case 4: { // pop
                int got = -1;
                bool ok = q.pop(got);
                ASSERT_EQ(ok, !ref.empty());
                if (ok) {
                    ASSERT_EQ(got, ref.front());
                    ref.pop_front();
                    ++pops;
                }
                break;
            }
            case 5: { // popBatch
                std::vector<int> got;
                std::size_t want = rng.nextBelow(5);
                std::size_t n = q.popBatch(got, want);
                ASSERT_EQ(n, std::min(want, ref.size()));
                ASSERT_EQ(got.size(), n);
                for (std::size_t i = 0; i < n; ++i) {
                    ASSERT_EQ(got[i], ref.front());
                    ref.pop_front();
                }
                pops += n;
                break;
            }
            case 6: { // random peek
                if (!ref.empty()) {
                    std::size_t i = rng.nextBelow(
                        static_cast<std::uint32_t>(ref.size()));
                    ASSERT_EQ(q.at(i), ref[i]);
                }
                break;
            }
            case 7: { // occasional clear
                if (rng.nextBool(0.1)) {
                    q.clear();
                    ref.clear();
                }
                break;
            }
            }
            ASSERT_EQ(q.size(), ref.size());
            ASSERT_EQ(q.empty(), ref.empty());
        }
        EXPECT_EQ(q.stats().pushes, pushes);
        EXPECT_EQ(q.stats().pops, pops);
        EXPECT_EQ(q.stats().maxDepth, maxDepth);
    }
}

TEST(Properties, WorkQueueCapacityFullMatchesReference)
{
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        SCOPED_TRACE("seed=" + std::to_string(seed));
        Rng rng(seed, 7);
        WorkQueue<int> q("cap");
        std::size_t cap = 1 + rng.nextBelow(8);
        q.setCapacity(cap);
        std::deque<int> ref;
        for (int op = 0; op < 200; ++op) {
            // Honor backpressure exactly as the runtime does: push
            // only when not full.
            if (rng.nextBool(0.6)) {
                if (!q.full()) {
                    q.push(op);
                    ref.push_back(op);
                }
            } else {
                int got;
                if (q.pop(got)) {
                    ASSERT_EQ(got, ref.front());
                    ref.pop_front();
                }
            }
            ASSERT_LE(q.size(), cap);
            ASSERT_EQ(q.full(), ref.size() >= cap);
        }
    }
}

// ------------------------- accessCost --------------------------- //

namespace {

/**
 * Independent replica of QueueBase::accessCost: a 400-cycle sliding
 * window of access timestamps (the contenders), plus the
 * warp-parallel payload-movement base cost.
 */
struct CostRef
{
    std::deque<Tick> window;

    double
    cost(const DeviceConfig& cfg, int itemBytes, Tick now, int items)
    {
        while (!window.empty() && window.front() < now - 400.0)
            window.pop_front();
        auto contenders = static_cast<double>(window.size());
        window.push_back(now);
        double base = cfg.queueOpCycles
            + cfg.queueByteCycles * itemBytes * std::max(items, 1)
                  / 16.0;
        return base + cfg.queueContentionCycles * contenders;
    }
};

} // namespace

TEST(Properties, AccessCostMatchesSlidingWindowReference)
{
    const DeviceConfig dev = DeviceConfig::byName("gtx1080");
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        SCOPED_TRACE("seed=" + std::to_string(seed));
        Rng rng(seed, 11);
        WorkQueue<double> q("cost"); // itemBytes = sizeof(double)
        CostRef ref;
        double refOp = 0.0, refContention = 0.0;
        Tick now = 0.0;
        for (int op = 0; op < 300; ++op) {
            // Non-decreasing access times, clustered enough that the
            // window often holds several accesses.
            now += rng.nextRange(0.0, 150.0);
            int items = static_cast<int>(rng.nextBelow(6));
            double got = q.accessCost(dev, now, items);
            double want =
                ref.cost(dev, q.itemBytes(), now, items);
            ASSERT_DOUBLE_EQ(got, want) << "op " << op;
            refOp += want;
            refContention +=
                want
                - (dev.queueOpCycles
                   + dev.queueByteCycles * q.itemBytes()
                         * std::max(items, 1) / 16.0);
        }
        EXPECT_DOUBLE_EQ(q.stats().opCycles, refOp);
        EXPECT_DOUBLE_EQ(q.stats().contentionCycles, refContention);
    }
}

// ------------------------- Link arbiter ------------------------- //

namespace {

/** Reference FIFO arbiter for one directed link. */
struct LinkRef
{
    double bw;
    Tick lat;
    Tick busyUntil = 0.0;

    Tick
    occupy(double bytes, Tick earliest)
    {
        Tick start = std::max(earliest, busyUntil);
        busyUntil = start + bytes / bw;
        return busyUntil + lat;
    }
};

} // namespace

TEST(Properties, LinkOccupyMatchesFifoArbiterReference)
{
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        SCOPED_TRACE("seed=" + std::to_string(seed));
        Rng rng(seed, 13);
        double bw = rng.nextRange(1.0, 32.0);
        Tick lat = rng.nextRange(0.0, 2000.0);
        Link link(bw, lat);
        LinkRef ref{bw, lat};

        Tick now = 0.0;
        Tick lastDelivery = 0.0;
        std::uint64_t transfers = 0;
        double bytesTotal = 0.0, serTotal = 0.0, waitTotal = 0.0;
        for (int op = 0; op < 200; ++op) {
            now += rng.nextRange(0.0, 400.0);
            double bytes = 1.0 + rng.nextBelow(4096);
            Tick start = std::max(now, ref.busyUntil);
            Tick got = link.occupy(bytes, now);
            Tick want = ref.occupy(bytes, now);
            ASSERT_DOUBLE_EQ(got, want) << "op " << op;
            ASSERT_DOUBLE_EQ(link.busyUntil(), ref.busyUntil);
            // FIFO serialization: deliveries never reorder.
            ASSERT_GE(got, lastDelivery);
            lastDelivery = got;
            ++transfers;
            bytesTotal += bytes;
            serTotal += bytes / bw;
            waitTotal += start - now;
        }
        EXPECT_EQ(link.stats().transfers, transfers);
        EXPECT_DOUBLE_EQ(link.stats().bytes, bytesTotal);
        EXPECT_DOUBLE_EQ(link.stats().serializeCycles, serTotal);
        EXPECT_DOUBLE_EQ(link.stats().waitCycles, waitTotal);
    }
}

// --------------------- Interconnect ordering -------------------- //

TEST(Properties, InterconnectDeliversEveryTransferInPairOrder)
{
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        SCOPED_TRACE("seed=" + std::to_string(seed));
        Rng rng(seed, 17);
        Simulator sim;
        InterconnectConfig cfg;
        cfg.kind = rng.nextBool(0.5)
            ? InterconnectConfig::Kind::Peer
            : InterconnectConfig::Kind::HostStaged;
        const int devices = 2 + static_cast<int>(rng.nextBelow(2));
        Interconnect icx(sim, cfg, devices);

        // Submit transfers at random times; tag each (src,dst) pair
        // with a sequence number and record delivery order.
        struct Sub
        {
            int src, dst, tag;
            Tick at;
            double bytes;
        };
        std::vector<Sub> subs;
        const int n = 30 + static_cast<int>(rng.nextBelow(40));
        for (int i = 0; i < n; ++i) {
            int src =
                static_cast<int>(rng.nextBelow(
                    static_cast<std::uint32_t>(devices)));
            int dst =
                static_cast<int>(rng.nextBelow(
                    static_cast<std::uint32_t>(devices)));
            if (dst == src)
                dst = (src + 1) % devices;
            subs.push_back({src, dst, 0, rng.nextRange(0.0, 5000.0),
                            1.0 + rng.nextBelow(2048)});
        }
        // The ordering guarantee is by *submission* order, i.e. by
        // simulated submit time (ties broken by scheduling order).
        // Sort stably by time, then tag each pair's transfers in
        // that order and schedule them in the same order so equal
        // times fire tag-sequentially.
        std::stable_sort(subs.begin(), subs.end(),
                         [](const Sub& a, const Sub& b) {
                             return a.at < b.at;
                         });
        std::map<std::pair<int, int>, int> nextTag;
        for (Sub& s : subs)
            s.tag = nextTag[{s.src, s.dst}]++;

        std::map<std::pair<int, int>, int> deliveredTag;
        std::uint64_t deliveries = 0;
        for (const Sub& s : subs) {
            sim.at(s.at, [&icx, &deliveredTag, &deliveries, s] {
                icx.transfer(s.src, s.dst, s.bytes,
                             [&deliveredTag, &deliveries, s] {
                                 // Pair order: tags arrive 0,1,2,...
                                 auto key =
                                     std::make_pair(s.src, s.dst);
                                 EXPECT_EQ(deliveredTag[key], s.tag);
                                 ++deliveredTag[key];
                                 ++deliveries;
                             });
            });
        }
        sim.run();
        EXPECT_EQ(deliveries, static_cast<std::uint64_t>(n));
        EXPECT_EQ(icx.inFlight(), 0u);
        InterconnectStats st = icx.stats();
        // End-to-end transfers regardless of topology (HostStaged
        // occupies two links per transfer but reports one).
        EXPECT_EQ(st.transfers, static_cast<std::uint64_t>(n));
        EXPECT_EQ(st.delivered, static_cast<std::uint64_t>(n));
        EXPECT_GT(st.bytes, 0.0);
    }
}

// ----------------------- serving plans -------------------------- //

namespace {

/** A random but valid serving plan drawn from @p rng. */
ServeConfig
randomServePlan(Rng& rng)
{
    ServeConfig sc;
    sc.seed = rng.nextU32();
    sc.epochCycles = 500.0 + rng.nextBelow(1500);
    sc.horizonCycles = 15000.0 + rng.nextBelow(15000);
    sc.overload = rng.nextBool(0.5) ? OverloadPolicy::Shed
                                    : OverloadPolicy::Queue;
    sc.queueCapacity = rng.nextBelow(16);
    sc.maxAdmitPerEpoch = rng.nextBool(0.3) ? 1 + rng.nextBelow(6) : 0;
    const int tenants = 1 + static_cast<int>(rng.nextBelow(3));
    for (int t = 0; t < tenants; ++t) {
        TenantConfig tc;
        tc.name = "t" + std::to_string(t);
        tc.priority = static_cast<int>(rng.nextBelow(4));
        tc.tokensPerCycle = rng.nextRange(0.0005, 0.02);
        tc.burstTokens = 1.0 + rng.nextBelow(8);
        if (rng.nextBool(0.5))
            tc.deadlineCycles = 500.0 + rng.nextBelow(20000);
        const int clients = 1 + static_cast<int>(rng.nextBelow(2));
        for (int c = 0; c < clients; ++c) {
            ClientConfig cl;
            cl.kind = rng.nextBool(0.5) ? ArrivalKind::OpenLoop
                                        : ArrivalKind::ClosedLoop;
            cl.meanInterarrivalCycles = 200.0 + rng.nextBelow(1800);
            cl.thinkCycles = 100.0 + rng.nextBelow(1500);
            tc.clients.push_back(cl);
        }
        sc.tenants.push_back(tc);
    }
    return sc;
}

/** One full generator+admission episode of a plan, as a comparable
 *  transcript. Service latency is a pure function of the request, so
 *  replaying the same plan must reproduce the transcript exactly. */
struct ServeEpisode
{
    struct Row
    {
        Tick at = 0.0;
        int tenant = 0;
        std::uint64_t id = 0;
        bool admitted = false;
    };
    std::vector<Row> rows;
    std::vector<std::uint64_t> offered, admitted, shed;
    std::size_t waitingAtEnd = 0;

    bool
    operator==(const ServeEpisode& o) const
    {
        if (rows.size() != o.rows.size())
            return false;
        for (std::size_t i = 0; i < rows.size(); ++i) {
            if (rows[i].at != o.rows[i].at
                || rows[i].tenant != o.rows[i].tenant
                || rows[i].id != o.rows[i].id
                || rows[i].admitted != o.rows[i].admitted)
                return false;
        }
        return offered == o.offered && admitted == o.admitted
            && shed == o.shed && waitingAtEnd == o.waitingAtEnd;
    }
};

ServeEpisode
playServePlan(const ServeConfig& sc)
{
    ServeEpisode ep;
    const std::size_t n = sc.tenants.size();
    ep.offered.assign(n, 0);
    ep.admitted.assign(n, 0);
    ep.shed.assign(n, 0);

    RequestSource source(sc);
    AdmissionController ac(sc);
    std::vector<Request> arrivals;
    // Run past the horizon until the generators retire, bounded so a
    // zero-rate Queue plan cannot loop forever on parked waiters.
    Tick now = 0.0;
    for (int epoch = 0; epoch < 400; ++epoch) {
        now += sc.epochCycles;
        arrivals.clear();
        source.poll(now, arrivals);
        if (arrivals.empty() && source.exhausted()
            && ac.waitingTotal() == 0)
            break;
        for (const Request& q : arrivals)
            ++ep.offered[static_cast<std::size_t>(q.tenant)];
        ac.offer(arrivals);
        auto d = ac.admitAt(now);
        for (const Request& q : d.shed) {
            ++ep.shed[static_cast<std::size_t>(q.tenant)];
            ep.rows.push_back({now, q.tenant, q.id, false});
            source.noteRequestDone(q.tenant, q.client, now);
        }
        for (const Request& q : d.admitted) {
            ++ep.admitted[static_cast<std::size_t>(q.tenant)];
            ep.rows.push_back({now, q.tenant, q.id, true});
            // Service latency is a pure function of the request id:
            // determinism must not depend on shared hidden state.
            Tick done = now + 300.0 + static_cast<double>(q.id % 7)
                    * 100.0;
            source.noteRequestDone(q.tenant, q.client, done);
        }
    }
    ep.waitingAtEnd = ac.waitingTotal();
    return ep;
}

} // namespace

TEST(Properties, RandomServingPlansConserveAndReplay)
{
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        SCOPED_TRACE("seed=" + std::to_string(seed));
        Rng rng(seed, 23);
        ServeConfig sc = randomServePlan(rng);
        ASSERT_NO_THROW(sc.validate());

        ServeEpisode ep = playServePlan(sc);

        // Conservation per tenant: every offered request was either
        // admitted, shed, or is still parked in a waiting room.
        std::uint64_t waitingSum = 0;
        for (std::size_t t = 0; t < sc.tenants.size(); ++t) {
            ASSERT_GE(ep.offered[t], ep.admitted[t] + ep.shed[t]);
            waitingSum +=
                ep.offered[t] - ep.admitted[t] - ep.shed[t];
        }
        EXPECT_EQ(waitingSum, ep.waitingAtEnd);

        // Arrival ids are dense and the transcript is time-ordered.
        Tick prev = 0.0;
        for (const ServeEpisode::Row& r : ep.rows) {
            EXPECT_GE(r.at, prev);
            prev = r.at;
        }

        // Deterministic replay: the identical plan reproduces the
        // identical transcript, decision for decision.
        EXPECT_TRUE(ep == playServePlan(sc))
            << "serving plan replay diverged";
    }
}

TEST(Properties, DeadlineAccountingMatchesReferenceCount)
{
    // summarizeTenantLatencies vs. a naive reference: for random
    // latency samples and a random deadline, the miss count is the
    // number of strictly-late completions (exactly-at-deadline hits),
    // the hit-rate is its exact complement, and when no deadline is
    // set the p99 target keeps the miss line while the hit-rate
    // stays vacuous.
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        SCOPED_TRACE("seed=" + std::to_string(seed));
        Rng rng(seed, 31);
        const int n = 1 + static_cast<int>(rng.nextBelow(40));
        std::vector<double> lats;
        for (int i = 0; i < n; ++i)
            lats.push_back(100.0 * (1 + rng.nextBelow(50)));
        // Half the draws land exactly on a sample value, pinning the
        // boundary semantics under random data too.
        const double line = rng.nextBool(0.5)
            ? lats[rng.nextBelow(static_cast<std::uint32_t>(n))]
            : 50.0 + 100.0 * rng.nextBelow(50);

        std::uint64_t late = 0;
        for (double v : lats)
            if (v > line)
                ++late;

        TenantConfig withDeadline;
        withDeadline.name = "p";
        withDeadline.deadlineCycles = line;
        TenantServeStats ts =
            summarizeTenantLatencies(withDeadline, lats);
        EXPECT_EQ(ts.deadlineMisses, late);
        EXPECT_DOUBLE_EQ(ts.deadlineHitRate,
                         static_cast<double>(
                             static_cast<std::uint64_t>(n) - late)
                             / static_cast<double>(n));

        TenantConfig sloOnly;
        sloOnly.name = "p";
        sloOnly.sloP99Cycles = line;
        TenantServeStats to = summarizeTenantLatencies(sloOnly, lats);
        EXPECT_EQ(to.deadlineMisses, late);
        EXPECT_DOUBLE_EQ(to.deadlineHitRate, 1.0);
    }
}

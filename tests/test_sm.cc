/**
 * @file
 * Unit tests for the SM residency accounting and processor-sharing
 * execution engine.
 */

#include <gtest/gtest.h>

#include "gpu/sm.hh"

using namespace vp;

namespace {

ResourceUsage
regs(int r, int code = 4096)
{
    ResourceUsage u;
    u.regsPerThread = r;
    u.codeBytes = code;
    return u;
}

WorkSpec
work(double insts, double warps, double memRatio = 0.0)
{
    WorkSpec w;
    w.warpInsts = insts;
    w.warps = warps;
    w.memRatio = memRatio;
    w.l1Hit = 0.5;
    return w;
}

struct Fixture
{
    Simulator sim;
    DeviceConfig cfg = DeviceConfig::k20c();
    Sm sm{sim, cfg, 0};
};

} // namespace

TEST(Sm, ResidencyAccounting)
{
    Fixture f;
    EXPECT_TRUE(f.sm.canFit(regs(255), 256));
    f.sm.occupy(regs(255), 256, 1);
    EXPECT_EQ(f.sm.residentBlocks(), 1);
    EXPECT_EQ(f.sm.usedRegs(), 255 * 256);
    // A second 255-reg block does not fit (paper: Reyes Megakernel).
    EXPECT_FALSE(f.sm.canFit(regs(255), 256));
    f.sm.release(regs(255), 256, 1);
    EXPECT_EQ(f.sm.residentBlocks(), 0);
    EXPECT_TRUE(f.sm.canFit(regs(255), 256));
}

TEST(Sm, PerKernelResidencyTracked)
{
    Fixture f;
    f.sm.occupy(regs(32), 128, 7);
    f.sm.occupy(regs(32), 128, 7);
    f.sm.occupy(regs(32), 128, 9);
    EXPECT_EQ(f.sm.residentBlocksOf(7), 2);
    EXPECT_EQ(f.sm.residentBlocksOf(9), 1);
    EXPECT_TRUE(f.sm.hasResident(9));
    f.sm.release(regs(32), 128, 9);
    EXPECT_FALSE(f.sm.hasResident(9));
}

TEST(Sm, ReleaseOfUnknownKernelPanics)
{
    Fixture f;
    EXPECT_THROW(f.sm.release(regs(32), 128, 3), PanicError);
}

TEST(Sm, SingleWorkCompletesAtPredictedTime)
{
    Fixture f;
    double done_at = -1.0;
    // Pure compute, 8 warps, demand = 8 > issueWidth 4 -> rate 4.
    f.sm.beginWork(work(1000.0, 8.0), 0, [&] { done_at = f.sim.now(); });
    f.sim.run();
    EXPECT_NEAR(done_at, 1000.0 / 4.0, 1e-6);
}

TEST(Sm, LowWarpWorkRunsAtItsOwnDemand)
{
    Fixture f;
    double done_at = -1.0;
    // 2 warps of pure compute demand 2 <= issueWidth -> rate 2.
    f.sm.beginWork(work(1000.0, 2.0), 0, [&] { done_at = f.sim.now(); });
    f.sim.run();
    EXPECT_NEAR(done_at, 500.0, 1e-6);
}

TEST(Sm, ProcessorSharingSplitsBandwidth)
{
    Fixture f;
    double t1 = -1.0, t2 = -1.0;
    // Two identical saturating executions: each gets half the SM.
    f.sm.beginWork(work(1000.0, 8.0), 0, [&] { t1 = f.sim.now(); });
    f.sm.beginWork(work(1000.0, 8.0), 0, [&] { t2 = f.sim.now(); });
    f.sim.run();
    EXPECT_NEAR(t1, 500.0, 1e-6);
    EXPECT_NEAR(t2, 500.0, 1e-6);
}

TEST(Sm, MoreResidentWarpsImproveLatencyHiding)
{
    // Memory-bound work: doubling resident warps raises utilization.
    DeviceConfig cfg = DeviceConfig::k20c();
    auto run_with = [&](double warps) {
        Simulator sim;
        Sm sm(sim, cfg, 0);
        double done = -1.0;
        sm.beginWork(work(1000.0, warps, 0.3), 0, [&] { done = sim.now(); });
        sim.run();
        return done;
    };
    double t_few = run_with(2.0);
    double t_many = run_with(8.0);
    EXPECT_LT(t_many, t_few);
}

TEST(Sm, DramBandwidthCapsMemoryHeavyWork)
{
    Fixture f;
    double done = -1.0;
    // All-miss memory-saturated work: DRAM cap binds well below the
    // issue-width cap.
    WorkSpec w = work(1000.0, 64.0, 0.9);
    w.l1Hit = 0.0;
    f.sm.beginWork(w, 0, [&] { done = f.sim.now(); });
    f.sim.run();
    double dram_rate = f.cfg.memIssuePerCycle
        / (0.9 * (1.0 - f.cfg.l2HitRate));
    EXPECT_NEAR(done, 1000.0 / dram_rate, 1.0);
}

TEST(Sm, IcachePressureSlowsExecution)
{
    DeviceConfig cfg = DeviceConfig::k20c();
    auto run_with_code = [&](int code_bytes) {
        Simulator sim;
        Sm sm(sim, cfg, 0);
        sm.occupy(regs(32, code_bytes), 256, 1);
        double done = -1.0;
        sm.beginWork(work(1000.0, 8.0), 1, [&] { done = sim.now(); });
        sim.run();
        return done;
    };
    double fits = run_with_code(cfg.icacheBytes / 2);
    double spills = run_with_code(cfg.icacheBytes * 2);
    EXPECT_NEAR(spills / fits, cfg.icachePenalty, 1e-6);
}

TEST(Sm, CompletionsCanStartNewWork)
{
    Fixture f;
    double second_done = -1.0;
    f.sm.beginWork(work(400.0, 4.0), 0, [&] {
        f.sm.beginWork(work(400.0, 4.0), 0,
                       [&] { second_done = f.sim.now(); });
    });
    f.sim.run();
    EXPECT_NEAR(second_done, 200.0, 1e-6);
}

TEST(Sm, StatsAccumulate)
{
    Fixture f;
    f.sm.beginWork(work(1000.0, 8.0), 0, [] {});
    f.sim.run();
    EXPECT_EQ(f.sm.stats().execsCompleted, 1u);
    EXPECT_NEAR(f.sm.stats().instsRetired, 1000.0, 1e-6);
    EXPECT_NEAR(f.sm.stats().activeCycles, 250.0, 1e-6);
}

TEST(Sm, StaggeredArrivalSharesCorrectly)
{
    Fixture f;
    double t1 = -1.0, t2 = -1.0;
    f.sm.beginWork(work(1000.0, 8.0), 0, [&] { t1 = f.sim.now(); });
    f.sim.after(125.0, [&] {
        // First exec has retired 500 insts by now (rate 4).
        f.sm.beginWork(work(1000.0, 8.0), 0, [&] { t2 = f.sim.now(); });
    });
    f.sim.run();
    // From t=125 both share at rate 2: first finishes its remaining
    // 500 at t=375; second then runs alone at rate 4 for its
    // remaining 500: t=500.
    EXPECT_NEAR(t1, 375.0, 1e-6);
    EXPECT_NEAR(t2, 500.0, 1e-6);
}

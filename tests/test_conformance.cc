/**
 * @file
 * Differential conformance suite: every registry application crossed
 * with every execution model — and, for persistent-block (Groups)
 * configurations, with the 1-device engine vs. a 2-device group
 * under each default shard plan — must produce the same output
 * fingerprint. The fingerprint is the per-stage processed-item total
 * (items + dead-lettered), so a pass means exact work conservation:
 * no model and no device split may lose, duplicate, or invent work.
 * Every run's verify() must also pass (RunResult::completed).
 *
 * Runs under the `conformance` ctest label.
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "apps/registry.hh"
#include "core/engine.hh"
#include "core/shard.hh"

using namespace vp;

namespace {

/**
 * Every execution model applicable to @p pipe on @p dev, labeled.
 * Mirrors the tuner's model coverage: host-sequenced KBK (single and
 * multi-stream), megakernel (shared and distributed queues), coarse
 * and fine persistent pipelines, RTC where the pipeline is acyclic,
 * and dynamic parallelism.
 */
std::vector<std::pair<std::string, PipelineConfig>>
allModels(Pipeline& pipe, const DeviceConfig& dev)
{
    std::vector<std::pair<std::string, PipelineConfig>> out;
    out.emplace_back("kbk", makeKbkConfig());
    out.emplace_back("kbk-stream", makeKbkStreamConfig(3));
    out.emplace_back("megakernel", makeMegakernelConfig(pipe));
    auto dist = makeMegakernelConfig(pipe);
    dist.distributedQueues = true;
    out.emplace_back("megakernel-dq", std::move(dist));
    if (dev.numSms >= pipe.stageCount())
        out.emplace_back("coarse", makeCoarseConfig(pipe, dev));
    try {
        out.emplace_back("fine", makeFineConfig(pipe, dev));
    } catch (const FatalError&) {
        // Too many stages for the device's SM budget; skip.
    }
    if (!pipe.hasCycle())
        out.emplace_back("rtc", makeRtcConfig(pipe));
    out.emplace_back("dp", makeDynamicParallelismConfig());
    return out;
}

/**
 * The conformance fingerprint of one run: the per-stage processed
 * item totals. Dead-lettered items count as processed (they were
 * consumed, deliberately) so fault-free runs and the totals stay
 * comparable across models.
 */
std::map<std::string, std::uint64_t>
fingerprint(const RunResult& r)
{
    std::map<std::string, std::uint64_t> fp;
    for (const StageRunStats& s : r.stages)
        fp[s.name] = s.items + s.deadLettered;
    return fp;
}

std::string
describeFp(const std::map<std::string, std::uint64_t>& fp)
{
    std::ostringstream out;
    for (const auto& [name, items] : fp)
        out << name << "=" << items << " ";
    return out.str();
}

class Conformance : public ::testing::TestWithParam<std::string>
{};

} // namespace

// Model conformance: every execution model processes exactly the
// same per-stage work and passes application verification. The KBK
// baseline defines the reference fingerprint.
TEST_P(Conformance, AllModelsAgreeOnEveryStagesWork)
{
    DeviceConfig dev = DeviceConfig::byName("gtx1080");
    auto app = makeApp(GetParam(), AppScale::Small);
    Engine engine(dev);

    bool first = true;
    std::map<std::string, std::uint64_t> want;
    int covered = 0;
    for (auto& [label, cfg] : allModels(app->pipeline(), dev)) {
        RunResult r = engine.run(*app, cfg);
        ASSERT_TRUE(r.completed)
            << GetParam() << "/" << label << ": " << r.failureReason;
        auto fp = fingerprint(r);
        if (first) {
            want = fp;
            first = false;
        } else {
            EXPECT_EQ(fp, want)
                << GetParam() << "/" << label << "\n got "
                << describeFp(fp) << "\nwant " << describeFp(want);
        }
        ++covered;
    }
    // KBK + streams + megakernel (x2) + DP always apply.
    EXPECT_GE(covered, 5) << GetParam();
}

// Device conformance: for every Groups model, a 2-device group under
// each default shard plan reproduces the single-device fingerprint
// exactly — splitting the pipeline over the interconnect must not
// change what work happens, only where.
TEST_P(Conformance, TwoDeviceShardsMatchSingleDevice)
{
    DeviceConfig dev = DeviceConfig::byName("gtx1080");
    auto app = makeApp(GetParam(), AppScale::Small);
    Pipeline& pipe = app->pipeline();
    Engine single(dev);
    Engine group(DeviceGroupConfig::homogeneous(dev, 2));

    int covered = 0;
    for (auto& [label, cfg] : allModels(pipe, dev)) {
        if (cfg.top != PipelineConfig::Top::Groups)
            continue;
        RunResult r1 = single.run(*app, cfg);
        ASSERT_TRUE(r1.completed) << GetParam() << "/" << label;
        auto want = fingerprint(r1);
        for (const ShardPlan& plan :
             defaultShardPlans(cfg, pipe, 2)) {
            RunResult r2 = group.runSharded(*app, cfg, plan);
            ASSERT_TRUE(r2.completed)
                << GetParam() << "/" << label << "/"
                << plan.describe() << ": " << r2.failureReason;
            EXPECT_EQ(fingerprint(r2), want)
                << GetParam() << "/" << label << "/"
                << plan.describe() << "\n got "
                << describeFp(fingerprint(r2)) << "\nwant "
                << describeFp(want);
            ++covered;
        }
    }
    // Megakernel (x2) always shards under replicate at minimum.
    EXPECT_GE(covered, 2) << GetParam();
}

// Host-parallel conformance: driving a 2-device group with two host
// threads (one event loop per device, conservative lookahead
// windows) reproduces the serial group loop's fingerprint under
// every default shard plan. Parallelism must change wall-clock time
// only — never what work happens.
TEST_P(Conformance, HostParallelShardsMatchSerial)
{
    DeviceConfig dev = DeviceConfig::byName("gtx1080");
    auto app = makeApp(GetParam(), AppScale::Small);
    Pipeline& pipe = app->pipeline();
    Engine serial(DeviceGroupConfig::homogeneous(dev, 2));
    Engine parallel(DeviceGroupConfig::homogeneous(dev, 2));
    parallel.setHostThreads(2);

    int covered = 0;
    for (auto& [label, cfg] : allModels(pipe, dev)) {
        if (cfg.top != PipelineConfig::Top::Groups)
            continue;
        for (const ShardPlan& plan :
             defaultShardPlans(cfg, pipe, 2)) {
            RunResult r1 = serial.runSharded(*app, cfg, plan);
            ASSERT_TRUE(r1.completed)
                << GetParam() << "/" << label << "/"
                << plan.describe() << ": " << r1.failureReason;
            RunResult r2 = parallel.runSharded(*app, cfg, plan);
            ASSERT_TRUE(r2.completed)
                << GetParam() << "/" << label << "/"
                << plan.describe() << ": " << r2.failureReason;
            EXPECT_EQ(fingerprint(r2), fingerprint(r1))
                << GetParam() << "/" << label << "/"
                << plan.describe() << "\n got "
                << describeFp(fingerprint(r2)) << "\nwant "
                << describeFp(fingerprint(r1));
            // Replicated plans take the exact tier: the merged
            // schedule is the serial one, event for event.
            if (!plan.anyPinned()) {
                EXPECT_EQ(r2.simEvents, r1.simEvents)
                    << GetParam() << "/" << label << "/"
                    << plan.describe();
                EXPECT_EQ(r2.cycles, r1.cycles)
                    << GetParam() << "/" << label << "/"
                    << plan.describe();
                EXPECT_EQ(r2.polls, r1.polls)
                    << GetParam() << "/" << label << "/"
                    << plan.describe();
            }
            ++covered;
        }
    }
    // Megakernel (x2) always shards under replicate at minimum.
    EXPECT_GE(covered, 2) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Apps, Conformance,
                         ::testing::Values("pyramid", "facedetect",
                                           "reyes", "cfd", "raster",
                                           "ldpc", "vidstream"));

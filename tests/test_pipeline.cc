/**
 * @file
 * Unit tests for the pipeline graph machinery.
 */

#include <gtest/gtest.h>

#include "toy_apps.hh"

using namespace vp;
using namespace vp::test;

TEST(Pipeline, StagesRegisterInOrder)
{
    LinearApp app;
    Pipeline& p = app.pipeline();
    EXPECT_EQ(p.stageCount(), 3);
    EXPECT_EQ(p.indexOf<LinearGen>(), 0);
    EXPECT_EQ(p.indexOf<LinearWork>(), 1);
    EXPECT_EQ(p.indexOf<LinearSink>(), 2);
    EXPECT_EQ(p.stage(0).name, "gen");
}

TEST(Pipeline, DuplicateStageTypeThrows)
{
    Pipeline p;
    p.addStage<LinearGen>();
    EXPECT_THROW(p.addStage<LinearGen>(), FatalError);
}

TEST(Pipeline, UnknownStageLookupThrows)
{
    Pipeline p;
    p.addStage<LinearGen>();
    EXPECT_THROW(p.indexOf<LinearSink>(), FatalError);
}

TEST(Pipeline, ProducerAndConsumerMasks)
{
    LinearApp app;
    Pipeline& p = app.pipeline();
    EXPECT_EQ(p.producersOf(0), 0u);
    EXPECT_EQ(p.producersOf(1), 0b001u);
    EXPECT_EQ(p.producersOf(2), 0b010u);
    EXPECT_EQ(p.consumersOf(0), 0b010u);
}

TEST(Pipeline, AncestorsTransitive)
{
    LinearApp app;
    Pipeline& p = app.pipeline();
    EXPECT_EQ(p.ancestorsOf(2), 0b011u); // gen and work
    EXPECT_EQ(p.ancestorsOf(0), 0u);
}

TEST(Pipeline, LinearPipelineHasNoCycle)
{
    LinearApp app;
    EXPECT_FALSE(app.pipeline().hasCycle());
    EXPECT_EQ(app.pipeline().structure(), PipelineStructure::Linear);
}

TEST(Pipeline, SelfLoopIsCycle)
{
    RecursiveApp app;
    Pipeline& p = app.pipeline();
    EXPECT_TRUE(p.hasCycle());
    EXPECT_EQ(p.structure(), PipelineStructure::Recursion);
    // Recursion reaches itself through the self edge.
    EXPECT_TRUE(p.ancestorsOf(0) & 1u);
}

TEST(Pipeline, ExplicitStructureOverrides)
{
    RecursiveApp app;
    app.pipeline().setStructure(PipelineStructure::Loop);
    EXPECT_EQ(app.pipeline().structure(), PipelineStructure::Loop);
}

TEST(Pipeline, LinkIsIdempotent)
{
    LinearApp app;
    Pipeline& p = app.pipeline();
    std::size_t before = p.edges().size();
    p.link<LinearGen, LinearWork>();
    EXPECT_EQ(p.edges().size(), before);
}

TEST(Pipeline, LinkValidatesIndices)
{
    LinearApp app;
    EXPECT_THROW(app.pipeline().link(0, 99), FatalError);
}

TEST(Pipeline, DisconnectedStageFailsValidation)
{
    Pipeline p;
    p.addStage<LinearGen>();
    p.addStage<LinearWork>(); // never linked
    EXPECT_THROW(p.validate(), FatalError);
}

TEST(Pipeline, ItemTypeAndBytesExposed)
{
    LinearApp app;
    EXPECT_EQ(app.pipeline().stage(0).itemBytes(),
              static_cast<int>(sizeof(ToyItem)));
    auto q = app.pipeline().stage(0).makeQueue();
    EXPECT_EQ(q->itemBytes(), static_cast<int>(sizeof(ToyItem)));
    EXPECT_EQ(q->name(), "gen");
}

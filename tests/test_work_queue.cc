/**
 * @file
 * Unit tests for the work-queue library and its cost model.
 */

#include <gtest/gtest.h>

#include "queueing/work_queue.hh"

using namespace vp;

TEST(WorkQueue, FifoOrder)
{
    WorkQueue<int> q("q");
    q.push(1);
    q.push(2);
    q.push(3);
    int v = 0;
    EXPECT_TRUE(q.pop(v));
    EXPECT_EQ(v, 1);
    EXPECT_TRUE(q.pop(v));
    EXPECT_EQ(v, 2);
    EXPECT_EQ(q.size(), 1u);
}

TEST(WorkQueue, PopOnEmptyReturnsFalse)
{
    WorkQueue<int> q("q");
    int v = 0;
    EXPECT_FALSE(q.pop(v));
}

TEST(WorkQueue, PopBatchTakesUpToMax)
{
    WorkQueue<int> q("q");
    for (int i = 0; i < 10; ++i)
        q.push(i);
    std::vector<int> out;
    EXPECT_EQ(q.popBatch(out, 4), 4u);
    EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(q.size(), 6u);
    out.clear();
    EXPECT_EQ(q.popBatch(out, 100), 6u);
    EXPECT_TRUE(q.empty());
}

TEST(WorkQueue, PopBatchCountsEveryPopInStats)
{
    WorkQueue<int> q("q");
    for (int i = 0; i < 10; ++i)
        q.push(i);
    std::vector<int> out;
    q.popBatch(out, 7);
    EXPECT_EQ(q.stats().pops, 7u);
    q.popBatch(out, 100);
    EXPECT_EQ(q.stats().pops, 10u);
    EXPECT_EQ(out.size(), 10u); // appended, not overwritten
    q.popBatch(out, 5); // empty queue: no stats movement
    EXPECT_EQ(q.stats().pops, 10u);
}

TEST(WorkQueue, ItemBytesMatchesPayload)
{
    struct Item { double a; int b; int c; };
    WorkQueue<Item> q("q");
    EXPECT_EQ(q.itemBytes(), static_cast<int>(sizeof(Item)));
}

TEST(WorkQueue, TypedDowncastChecksType)
{
    WorkQueue<int> q("q");
    QueueBase& base = q;
    EXPECT_NO_THROW(typedQueue<int>(base));
    EXPECT_THROW(typedQueue<double>(base), PanicError);
}

TEST(WorkQueue, StatsTrackDepthAndCounts)
{
    WorkQueue<int> q("q");
    q.push(1);
    q.push(2);
    int v;
    q.pop(v);
    q.push(3);
    q.push(4);
    EXPECT_EQ(q.stats().pushes, 4u);
    EXPECT_EQ(q.stats().pops, 1u);
    EXPECT_EQ(q.stats().maxDepth, 3u);
}

TEST(WorkQueue, ClearEmptiesQueue)
{
    WorkQueue<int> q("q");
    q.push(1);
    q.clear();
    EXPECT_TRUE(q.empty());
}

TEST(WorkQueue, AccessCostGrowsWithItemSize)
{
    auto cfg = DeviceConfig::k20c();
    struct Big { char data[272]; };  // Reyes-sized item (Table 2)
    struct Small { int v; };         // Raster-sized item
    WorkQueue<Big> big("big");
    WorkQueue<Small> small("small");
    Tick cb = big.accessCost(cfg, 0.0, 1);
    Tick cs = small.accessCost(cfg, 0.0, 1);
    EXPECT_GT(cb, cs);
}

TEST(WorkQueue, ContentionSurchargeWithinWindow)
{
    auto cfg = DeviceConfig::k20c();
    WorkQueue<int> q("q");
    Tick first = q.accessCost(cfg, 1000.0, 1);
    Tick second = q.accessCost(cfg, 1000.0, 1);
    Tick third = q.accessCost(cfg, 1001.0, 1);
    EXPECT_GT(second, first);
    EXPECT_GT(third, second);
}

TEST(WorkQueue, ContentionDecaysOutsideWindow)
{
    auto cfg = DeviceConfig::k20c();
    WorkQueue<int> q("q");
    q.accessCost(cfg, 0.0, 1);
    q.accessCost(cfg, 1.0, 1);
    // Far in the future the old accesses no longer contend.
    Tick later = q.accessCost(cfg, 100000.0, 1);
    WorkQueue<int> fresh("fresh");
    EXPECT_DOUBLE_EQ(later, fresh.accessCost(cfg, 0.0, 1));
}

TEST(WorkQueue, ContentionCyclesRecordedInStats)
{
    auto cfg = DeviceConfig::k20c();
    WorkQueue<int> q("q");
    q.accessCost(cfg, 0.0, 1);
    q.accessCost(cfg, 0.0, 1);
    EXPECT_GT(q.stats().contentionCycles, 0.0);
}

TEST(WorkQueue, ResetStatsClearsContentionWindow)
{
    // Regression: resetStats() used to leave the recent-access ring
    // populated, so a queue reused across runs charged phantom
    // contention from the previous run's accesses.
    auto cfg = DeviceConfig::k20c();
    WorkQueue<int> used("used");
    used.accessCost(cfg, 0.0, 1);
    used.accessCost(cfg, 0.0, 1);
    used.accessCost(cfg, 1.0, 1);
    used.resetStats();
    WorkQueue<int> fresh("fresh");
    EXPECT_DOUBLE_EQ(used.accessCost(cfg, 1.0, 1),
                     fresh.accessCost(cfg, 1.0, 1));
    EXPECT_DOUBLE_EQ(used.stats().contentionCycles,
                     fresh.stats().contentionCycles);
}

TEST(WorkQueue, RunResetRunMatchesTwoFreshRuns)
{
    auto cfg = DeviceConfig::k20c();
    auto runPattern = [&cfg](QueueBase& q) {
        Tick total = 0.0;
        for (int i = 0; i < 8; ++i)
            total += q.accessCost(cfg, 0.5 * i, 2);
        return total;
    };
    WorkQueue<int> reused("q");
    Tick first = runPattern(reused);
    reused.resetStats();
    Tick second = runPattern(reused);
    EXPECT_DOUBLE_EQ(second, first);
}

TEST(WorkQueue, ResetStatsRebaselinesDepthEwma)
{
    // A run-boundary reset re-baselines the EWMA to the live depth:
    // a queue still holding items must not claim an empty history,
    // and an emptied queue starts the next run from zero.
    WorkQueue<int> q("q");
    q.enableDepthEwma(0.5);
    q.push(1);
    q.push(2);
    EXPECT_GT(q.depthEwma(), 0.0);
    q.resetStats();
    EXPECT_DOUBLE_EQ(q.depthEwma(), 2.0);
    int out = 0;
    q.pop(out);
    q.pop(out);
    q.resetStats();
    EXPECT_DOUBLE_EQ(q.depthEwma(), 0.0);
}

TEST(WorkQueue, MoveOnlyPayloadsSupported)
{
    WorkQueue<std::unique_ptr<int>> q("q");
    q.push(std::make_unique<int>(5));
    std::unique_ptr<int> out;
    EXPECT_TRUE(q.pop(out));
    EXPECT_EQ(*out, 5);
}

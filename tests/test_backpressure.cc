/**
 * @file
 * Bounded-queue backpressure parity: a pipeline whose middle stage
 * has a finite queue capacity must behave identically on one device
 * and on a 2-device group under every default shard plan — same
 * outcome, same per-stage work, and the bound actually enforced.
 *
 * Regression coverage for the remote-stub credit scheme: stages
 * homed on another device used to report full() == false
 * unconditionally, so producers on peer devices ignored the bound
 * entirely (no backpressure waits, home queue depth beyond
 * capacity).
 */

#include <gtest/gtest.h>

#include <map>

#include "core/shard.hh"
#include "queueing/remote_queue.hh"
#include "toy_apps.hh"

using namespace vp;
using test::ToyItem;

namespace {

constexpr std::size_t kBound = 8;

struct BpSink;
struct BpWork;

/** Fast producer: floods the bounded middle stage. */
struct BpGen : Stage<ToyItem>
{
    BpGen()
    {
        name = "bp_gen";
        retryable = true;
        threadNum = 64; // small batches so the bound is felt
        resources.regsPerThread = 32;
        resources.codeBytes = 4000;
    }

    TaskCost
    cost(const ToyItem&) const override
    {
        TaskCost c;
        c.computeInsts = 100;
        c.memInsts = 10;
        return c;
    }

    void execute(ExecContext& ctx, ToyItem& item) override;
};

/** Slow bounded consumer: its input queue holds kBound items. */
struct BpWork : Stage<ToyItem>
{
    BpWork()
    {
        name = "bp_work";
        retryable = true;
        threadNum = 64;
        queueCapacity = kBound;
        resources.regsPerThread = 48;
        resources.codeBytes = 6000;
    }

    TaskCost
    cost(const ToyItem&) const override
    {
        TaskCost c;
        c.computeInsts = 2000;
        c.memInsts = 100;
        return c;
    }

    void execute(ExecContext& ctx, ToyItem& item) override;
};

struct BpSink : Stage<ToyItem>
{
    BpSink()
    {
        name = "bp_sink";
        resources.regsPerThread = 24;
        resources.codeBytes = 3000;
    }

    TaskCost
    cost(const ToyItem&) const override
    {
        TaskCost c;
        c.computeInsts = 100;
        c.memInsts = 20;
        return c;
    }

    void
    execute(ExecContext&, ToyItem& item) override
    {
        sum += item.value;
        ++count;
    }

    void
    reset() override
    {
        sum = 0;
        count = 0;
    }

    long sum = 0;
    int count = 0;
};

inline void
BpGen::execute(ExecContext& ctx, ToyItem& item)
{
    item.value += 1;
    ctx.enqueue<BpWork>(item);
}

inline void
BpWork::execute(ExecContext& ctx, ToyItem& item)
{
    item.value *= 2;
    ctx.enqueue<BpSink>(item);
}

/** Linear pipeline with a bounded middle stage. */
class BoundedApp : public AppDriver
{
  public:
    explicit BoundedApp(int flows = 3, int perFlow = 60)
        : flows_(flows), perFlow_(perFlow)
    {
        pipe_.addStage<BpGen>();
        pipe_.addStage<BpWork>();
        pipe_.addStage<BpSink>();
        pipe_.link<BpGen, BpWork>();
        pipe_.link<BpWork, BpSink>();
    }

    std::string name() const override { return "bounded-toy"; }

    Pipeline& pipeline() override { return pipe_; }

    void reset() override {}

    int flowCount() const override { return flows_; }

    void
    seedFlow(Seeder& seeder, int flow) override
    {
        std::vector<ToyItem> items;
        for (int i = 0; i < perFlow_; ++i)
            items.push_back(ToyItem{flow * 1000 + i, flow});
        seeder.insert<BpGen>(std::move(items));
    }

    double inputBytes() const override { return 1 << 16; }

    bool
    verify() override
    {
        auto& sink = pipe_.stageAs<BpSink>();
        if (sink.count != flows_ * perFlow_)
            return false;
        long want = 0;
        for (int f = 0; f < flows_; ++f)
            for (int i = 0; i < perFlow_; ++i)
                want += (f * 1000 + i + 1) * 2;
        return sink.sum == want;
    }

  private:
    Pipeline pipe_;
    int flows_;
    int perFlow_;
};

std::map<std::string, std::uint64_t>
fingerprint(const RunResult& r)
{
    std::map<std::string, std::uint64_t> fp;
    for (const StageRunStats& s : r.stages)
        fp[s.name] = s.items + s.deadLettered;
    return fp;
}

std::size_t
workMaxDepth(const RunResult& r)
{
    for (const StageRunStats& s : r.stages)
        if (s.name == "bp_work")
            return s.queue.maxDepth;
    return 0;
}

/** Groups configurations whose shard plans exercise the bound. */
std::vector<std::pair<std::string, PipelineConfig>>
groupsModels(Pipeline& pipe, const DeviceConfig& dev)
{
    std::vector<std::pair<std::string, PipelineConfig>> out;
    out.emplace_back("megakernel", makeMegakernelConfig(pipe));
    out.emplace_back("coarse", makeCoarseConfig(pipe, dev));
    out.emplace_back("fine", makeFineConfig(pipe, dev));
    return out;
}

} // namespace

// Commits push one whole batch after the full() check, so the bound
// may legitimately overshoot by a few in-flight batches; anything
// near the seeded item count means the bound was ignored.
constexpr std::size_t kDepthSlack = 8;

TEST(Backpressure, BoundEnforcedOnOneDevice)
{
    DeviceConfig dev = DeviceConfig::byName("gtx1080");
    BoundedApp app;
    Engine engine(dev);
    // Coarse: the producer owns dedicated SMs and keeps pushing
    // while the bounded consumer is starved for compute.
    RunResult r =
        engine.run(app, makeCoarseConfig(app.pipeline(), dev));
    ASSERT_TRUE(r.completed) << r.failureReason;
    EXPECT_GT(r.faults.backpressureWaits, 0u);
    EXPECT_LE(workMaxDepth(r), kBound + kDepthSlack);
}

TEST(Backpressure, ShardedRunsMatchSingleDeviceExactly)
{
    DeviceConfig dev = DeviceConfig::byName("gtx1080");
    BoundedApp app;
    Pipeline& pipe = app.pipeline();
    Engine single(dev);
    Engine group(DeviceGroupConfig::homogeneous(dev, 2));

    int pinnedCovered = 0;
    for (auto& [label, cfg] : groupsModels(pipe, dev)) {
        RunResult r1 = single.run(app, cfg);
        ASSERT_TRUE(r1.completed) << label << ": "
                                  << r1.failureReason;
        auto want = fingerprint(r1);
        for (const ShardPlan& plan : defaultShardPlans(cfg, pipe, 2)) {
            RunResult r2 = group.runSharded(app, cfg, plan);
            ASSERT_TRUE(r2.completed)
                << label << "/" << plan.describe() << ": "
                << r2.failureReason;
            EXPECT_EQ(r2.outcome, r1.outcome)
                << label << "/" << plan.describe();
            EXPECT_EQ(fingerprint(r2), want)
                << label << "/" << plan.describe();
            // The bound must hold no matter which device the stage
            // landed on.
            EXPECT_LE(workMaxDepth(r2), kBound + kDepthSlack)
                << label << "/" << plan.describe();
            if (plan.anyPinned()) {
                // Remote producers honor the home queue's capacity
                // through the credit scheme: the bounded stage still
                // pushes back across the interconnect.
                EXPECT_GT(r2.faults.backpressureWaits, 0u)
                    << label << "/" << plan.describe();
                ++pinnedCovered;
            }
        }
    }
    // Coarse splits into one group per stage, so its round-robin
    // pinned plan must have exercised the remote-capacity path.
    EXPECT_GE(pinnedCovered, 1);
}

TEST(Backpressure, RemoteStubReportsHomeQueueFull)
{
    // Unit-level credit check: a stub with a wired probe mirrors the
    // probe's verdict; an unwired stub (the pre-coordinator default)
    // stays permissive.
    int calls = 0;
    bool full = false;
    RemoteStubQueue<ToyItem> stub(
        "stub",
        [](int, std::uint64_t, std::function<void(QueueBase&)>) {});
    EXPECT_FALSE(stub.full()); // unwired: permissive, as before
    stub.setFullProbe([&calls, &full] {
        ++calls;
        return full;
    });
    EXPECT_FALSE(stub.full());
    full = true;
    EXPECT_TRUE(stub.full());
    EXPECT_EQ(calls, 2);
}

/**
 * @file
 * Unit tests for the analytic SM cost model.
 */

#include <gtest/gtest.h>

#include "gpu/cost_model.hh"

using namespace vp;

namespace {

TaskCost
cost(double comp, double mem, double l1 = 0.5, double serial = 0.0)
{
    TaskCost c;
    c.computeInsts = comp;
    c.memInsts = mem;
    c.l1HitRate = l1;
    c.serialInsts = serial;
    return c;
}

} // namespace

TEST(CostModel, EffectiveLatencyDecreasesWithL1Hits)
{
    auto cfg = DeviceConfig::k20c();
    EXPECT_LT(effectiveMemLatency(cfg, 0.9),
              effectiveMemLatency(cfg, 0.1));
}

TEST(CostModel, EffectiveLatencyBoundedByExtremes)
{
    auto cfg = DeviceConfig::k20c();
    double all_hit = effectiveMemLatency(cfg, 1.0);
    EXPECT_NEAR(all_hit, cfg.l1LatencyCycles / cfg.mlp, 1e-9);
    double no_hit = effectiveMemLatency(cfg, 0.0);
    EXPECT_GT(no_hit, all_hit);
}

TEST(CostModel, PerWarpRateIsOneForPureCompute)
{
    auto cfg = DeviceConfig::k20c();
    WorkSpec w;
    w.memRatio = 0.0;
    EXPECT_DOUBLE_EQ(perWarpRate(cfg, w), 1.0);
}

TEST(CostModel, PerWarpRateFallsWithMemoryIntensity)
{
    auto cfg = DeviceConfig::k20c();
    WorkSpec light, heavy;
    light.memRatio = 0.05;
    heavy.memRatio = 0.5;
    light.l1Hit = heavy.l1Hit = 0.5;
    EXPECT_GT(perWarpRate(cfg, light), perWarpRate(cfg, heavy));
}

TEST(CostModel, MakeWorkSpecCountsWarps)
{
    auto cfg = DeviceConfig::k20c();
    // 4 tasks x 64 threads = 256 threads = 8 warps.
    auto w = makeWorkSpec(cfg, cost(400.0, 0.0), 64, 4, 100.0);
    EXPECT_DOUBLE_EQ(w.warps, 8.0);
    // 100 insts per thread stream, 8 warps -> 800 warp insts.
    EXPECT_DOUBLE_EQ(w.warpInsts, 800.0);
}

TEST(CostModel, PartialWarpStillCostsOneWarp)
{
    auto cfg = DeviceConfig::k20c();
    auto w = makeWorkSpec(cfg, cost(10.0, 0.0), 1, 1, 10.0);
    EXPECT_DOUBLE_EQ(w.warps, 1.0);
}

TEST(CostModel, ImbalancedBatchBoundedByCriticalItem)
{
    auto cfg = DeviceConfig::k20c();
    // Batch mean is 100 insts/task, but the largest item is 1000:
    // the batch cannot finish before its critical item.
    auto balanced = makeWorkSpec(cfg, cost(400.0, 0.0), 64, 4, 100.0);
    auto skewed = makeWorkSpec(cfg, cost(400.0, 0.0), 64, 4, 1000.0);
    EXPECT_GT(skewed.warpInsts, balanced.warpInsts);
    EXPECT_DOUBLE_EQ(skewed.warpInsts, 1000.0 * 8);
}

TEST(CostModel, SerialPortionShrinksEffectiveWarps)
{
    auto cfg = DeviceConfig::k20c();
    auto par = makeWorkSpec(cfg, cost(1000.0, 0.0), 256, 1, 1000.0);
    auto ser = makeWorkSpec(cfg, cost(1000.0, 0.0, 0.5, 4000.0),
                            256, 1, 1000.0);
    EXPECT_DOUBLE_EQ(par.warps, 8.0);
    EXPECT_LT(ser.warps, 4.0);
    EXPECT_GT(ser.warpInsts, par.warpInsts);
}

TEST(CostModel, SerialOnlyWorkHasOneEffectiveWarp)
{
    auto cfg = DeviceConfig::k20c();
    auto w = makeWorkSpec(cfg, cost(0.0, 0.0, 0.5, 500.0), 256, 1, 0.0);
    EXPECT_DOUBLE_EQ(w.warps, 1.0);
    EXPECT_DOUBLE_EQ(w.warpInsts, 500.0);
}

TEST(CostModel, MemRatioReflectsMix)
{
    auto cfg = DeviceConfig::k20c();
    auto w = makeWorkSpec(cfg, cost(75.0, 25.0), 32, 1, 100.0);
    EXPECT_NEAR(w.memRatio, 0.25, 1e-9);
}

TEST(CostModel, TaskCostAccumulationBlendsHitRates)
{
    TaskCost a = cost(100.0, 100.0, 1.0);
    TaskCost b = cost(100.0, 100.0, 0.0);
    a += b;
    EXPECT_NEAR(a.l1HitRate, 0.5, 1e-9);
    EXPECT_DOUBLE_EQ(a.computeInsts, 200.0);
}

class LatencyHidingSweep : public ::testing::TestWithParam<double>
{};

// Property: per-warp rate is monotonically non-increasing in memRatio.
TEST_P(LatencyHidingSweep, RateMonotoneInMemRatio)
{
    auto cfg = DeviceConfig::k20c();
    double m = GetParam();
    WorkSpec lo, hi;
    lo.memRatio = m;
    hi.memRatio = m + 0.05;
    lo.l1Hit = hi.l1Hit = 0.4;
    EXPECT_GE(perWarpRate(cfg, lo), perWarpRate(cfg, hi));
}

INSTANTIATE_TEST_SUITE_P(MemRatios, LatencyHidingSweep,
                         ::testing::Values(0.0, 0.1, 0.2, 0.3, 0.4, 0.5,
                                           0.6, 0.7, 0.8, 0.9));

/**
 * @file
 * Chaos suite: randomized fault plans (SM kills/degrades, whole-
 * device kills, link fail/degrade events) thrown at multi-device
 * groups across apps, execution models and shard plans. Every
 * scenario must drain without hanging (hard drain-timeout watchdog),
 * conserve items exactly (outcome Completed or Degraded — never
 * Stalled or DrainTimeout), and replay bit-identically. Failures
 * print the generator seed for replay.
 *
 * Seed count defaults to 100; VP_CHAOS_SEEDS overrides it (the
 * sanitizer tier runs a reduced smoke).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "apps/registry.hh"
#include "common/rng.hh"
#include "core/engine.hh"
#include "core/recovery.hh"
#include "core/shard.hh"
#include "sim/fault.hh"

using namespace vp;

namespace {

/** Per-stage processed-item counts (the conservation fingerprint). */
std::vector<std::uint64_t>
stageItems(const RunResult& r)
{
    std::vector<std::uint64_t> v;
    for (const StageRunStats& s : r.stages)
        v.push_back(s.items + s.deadLettered);
    return v;
}

int
seedCount()
{
    if (const char* env = std::getenv("VP_CHAOS_SEEDS")) {
        int n = std::atoi(env);
        if (n > 0)
            return n;
    }
    return 100;
}

/**
 * A random fault plan for an n-device group. Device kills spare at
 * least one survivor, and SM kills never take out a whole device —
 * losing every SM without the failover path is a legitimate stall,
 * not a chaos finding.
 */
FaultPlan
randomPlan(Rng& rng, int nDevices, int numSms)
{
    FaultPlan fp;
    auto when = [&rng] { return rng.nextRange(0.0, 120000.0); };

    int smEvents = static_cast<int>(rng.nextBelow(3));
    for (int i = 0; i < smEvents; ++i) {
        SmFaultEvent e;
        e.time = when();
        e.device = static_cast<int>(
            rng.nextBelow(static_cast<std::uint32_t>(nDevices)));
        e.sm = static_cast<int>(
            rng.nextBelow(static_cast<std::uint32_t>(numSms)));
        if (rng.nextBool(0.5)) {
            e.kind = SmFaultEvent::Kind::Kill;
        } else {
            e.kind = SmFaultEvent::Kind::Degrade;
            e.factor = rng.nextRange(0.3, 0.9);
        }
        fp.smEvents.push_back(e);
    }

    int maxKills = nDevices - 1;
    int kills = static_cast<int>(
        rng.nextBelow(static_cast<std::uint32_t>(maxKills + 1)));
    std::vector<char> killed(static_cast<std::size_t>(nDevices), 0);
    for (int i = 0; i < kills; ++i) {
        int d = static_cast<int>(
            rng.nextBelow(static_cast<std::uint32_t>(nDevices)));
        if (killed[static_cast<std::size_t>(d)])
            continue; // duplicate kills are legal but uninteresting
        killed[static_cast<std::size_t>(d)] = 1;
        DeviceFaultEvent e;
        e.time = when();
        e.device = d;
        fp.deviceEvents.push_back(e);
    }

    int linkEvents = static_cast<int>(rng.nextBelow(3));
    for (int i = 0; i < linkEvents && nDevices > 1; ++i) {
        LinkFaultEvent e;
        e.time = when();
        e.src = static_cast<int>(
            rng.nextBelow(static_cast<std::uint32_t>(nDevices)));
        e.dst = static_cast<int>(rng.nextBelow(
            static_cast<std::uint32_t>(nDevices - 1)));
        if (e.dst >= e.src)
            ++e.dst; // uniform over dst != src
        if (rng.nextBool(0.5)) {
            e.kind = LinkFaultEvent::Kind::Fail;
        } else {
            e.kind = LinkFaultEvent::Kind::Degrade;
            e.factor = rng.nextRange(0.3, 0.9);
        }
        fp.linkEvents.push_back(e);
    }
    return fp;
}

} // namespace

TEST(Chaos, RandomFaultPlansDrainConserveAndReplay)
{
    const DeviceConfig dev = DeviceConfig::byName("gtx1080");
    const int numSeeds = seedCount();

    for (int seed = 0; seed < numSeeds; ++seed) {
        SCOPED_TRACE("chaos seed=" + std::to_string(seed));
        Rng rng(static_cast<std::uint64_t>(seed),
                0x5eedc0de5eedc0deULL);

        // Three-way app pick keeps old seeds' first draw meaningful:
        // raster keeps its half, the other half splits between the
        // batch pyramid and the fan-out-drifting vidstream.
        const char* appName = rng.nextBool(0.5)
            ? "raster"
            : (rng.nextBool(0.5) ? "pyramid" : "vidstream");
        auto app = makeApp(appName, AppScale::Small);
        Pipeline& pipe = app->pipeline();

        int nDevices = 2 + static_cast<int>(rng.nextBelow(2));
        PipelineConfig cfg = rng.nextBool(0.5)
            ? makeMegakernelConfig(pipe)
            : makeCoarseConfig(pipe, dev);

        std::vector<ShardPlan> plans =
            defaultShardPlans(cfg, pipe, nDevices);
        ASSERT_FALSE(plans.empty());
        const ShardPlan& plan = plans[rng.nextBelow(
            static_cast<std::uint32_t>(plans.size()))];

        FaultPlan fp = randomPlan(rng, nDevices, dev.numSms);

        // Hard watchdog: a wedged scenario surfaces as DrainTimeout
        // (failing the outcome assertion with the seed attached)
        // instead of hanging the suite.
        RecoveryConfig rc;
        rc.drainTimeoutCycles = 50e6;

        Engine group(DeviceGroupConfig::homogeneous(dev, nDevices));
        group.setFaultPlan(fp);
        group.setRecovery(rc);

        RunResult r1 = group.runSharded(*app, cfg, plan);
        ASSERT_TRUE(r1.outcome == RunOutcome::Completed
                    || r1.outcome == RunOutcome::Degraded)
            << "outcome=" << runOutcomeName(r1.outcome)
            << " app=" << appName << " devices=" << nDevices
            << " shard=" << plan.describe() << "\n"
            << r1.failureReason;

        RunResult r2 = group.runSharded(*app, cfg, plan);
        EXPECT_EQ(r1.outcome, r2.outcome);
        EXPECT_EQ(stageItems(r1), stageItems(r2));
        EXPECT_EQ(r1.cycles, r2.cycles);
        EXPECT_EQ(r1.simEvents, r2.simEvents);
        EXPECT_EQ(r1.faults.deadLettered, r2.faults.deadLettered);
        EXPECT_EQ(r1.faults.transfersRedelivered,
                  r2.faults.transfersRedelivered);
    }
}

/**
 * @file
 * Golden-corpus regression tests: every registry application at
 * small scale is run under a fixed configuration matrix (KBK
 * baseline, single-device megakernel, and a 2x GTX 1080 replicated
 * shard) and serialized — cycle count to full double precision
 * (%.17g), event count, polls, per-stage item totals — then compared
 * byte-for-byte against tests/golden/<app>.json.
 *
 * A mismatch means the simulation's observable behavior changed. If
 * the change is intentional, regenerate the corpus with
 * scripts/regen_golden.sh (which runs this binary with
 * GOLDEN_REGEN=1) and review the diff like any other code change.
 *
 * GOLDEN_DIR is injected by the build as the absolute path of the
 * in-tree corpus so regeneration writes back to the source tree.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "apps/registry.hh"
#include "core/engine.hh"
#include "core/shard.hh"

using namespace vp;

namespace {

std::string
num(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

void
appendRun(std::ostream& out, const std::string& label,
          const RunResult& r, bool last)
{
    out << "    \"" << label << "\": {\n"
        << "      \"cycles\": " << num(r.cycles) << ",\n"
        << "      \"sim_events\": " << r.simEvents << ",\n"
        << "      \"polls\": " << r.polls << ",\n"
        << "      \"stages\": {";
    for (std::size_t i = 0; i < r.stages.size(); ++i) {
        const StageRunStats& s = r.stages[i];
        out << (i ? ", " : "") << "\"" << s.name
            << "\": " << (s.items + s.deadLettered);
    }
    out << "}\n    }" << (last ? "\n" : ",\n");
}

/**
 * The full golden document of one application. @p hostThreads
 * drives the multi-device run's host parallelism (1 = the serial
 * group loop); the document must come out byte-identical either way.
 */
std::string
goldenFor(const std::string& app, int hostThreads = 1)
{
    DeviceConfig dev = DeviceConfig::byName("gtx1080");
    std::ostringstream out;
    out << "{\n  \"app\": \"" << app << "\",\n"
        << "  \"device\": \"" << dev.name << "\",\n"
        << "  \"runs\": {\n";

    {
        auto driver = makeApp(app, AppScale::Small);
        Engine engine(dev);
        RunResult r = engine.run(*driver, makeKbkConfig());
        EXPECT_TRUE(r.completed) << app << "/kbk";
        appendRun(out, "kbk", r, false);
    }
    {
        auto driver = makeApp(app, AppScale::Small);
        Engine engine(dev);
        RunResult r = engine.run(
            *driver, makeMegakernelConfig(driver->pipeline()));
        EXPECT_TRUE(r.completed) << app << "/megakernel";
        appendRun(out, "megakernel", r, false);
    }
    {
        auto driver = makeApp(app, AppScale::Small);
        Engine engine(DeviceGroupConfig::homogeneous(dev, 2));
        engine.setHostThreads(hostThreads);
        PipelineConfig cfg =
            makeMegakernelConfig(driver->pipeline());
        RunResult r = engine.runSharded(
            *driver, cfg,
            ShardPlan::replicateAll(driver->pipeline()));
        EXPECT_TRUE(r.completed) << app << "/megakernel-x2";
        appendRun(out, "megakernel-x2", r, true);
    }

    out << "  }\n}\n";
    return out.str();
}

std::string
goldenPath(const std::string& app)
{
    return std::string(GOLDEN_DIR) + "/" + app + ".json";
}

class Golden : public ::testing::TestWithParam<std::string>
{};

} // namespace

TEST_P(Golden, MatchesCorpus)
{
    const std::string app = GetParam();
    const std::string got = goldenFor(app);
    const std::string path = goldenPath(app);

    if (std::getenv("GOLDEN_REGEN")) {
        std::ofstream out(path);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << got;
        SUCCEED() << "regenerated " << path;
        return;
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.good())
        << path << " is missing; run scripts/regen_golden.sh";
    std::ostringstream want;
    want << in.rdbuf();
    EXPECT_EQ(got, want.str())
        << app << " diverged from its golden corpus entry. If the "
        << "change is intentional, run scripts/regen_golden.sh and "
        << "commit the diff.";
}

// The host-parallel loop must reproduce the golden corpus
// byte-for-byte: the megakernel-x2 run under two host threads takes
// the exact tier (replicate plan, one event loop per device) and its
// cycles/sim_events/polls/per-stage totals are checked against the
// same corpus files the serial loop generated. Never regenerates.
TEST_P(Golden, MatchesCorpusHostParallel)
{
    const std::string app = GetParam();
    const std::string path = goldenPath(app);

    std::ifstream in(path);
    ASSERT_TRUE(in.good())
        << path << " is missing; run scripts/regen_golden.sh";
    std::ostringstream want;
    want << in.rdbuf();
    EXPECT_EQ(goldenFor(app, 2), want.str())
        << app << ": the host-parallel group loop diverged from the "
        << "serial golden corpus — the exact tier must be "
        << "bit-identical, not regenerated.";
}

INSTANTIATE_TEST_SUITE_P(Apps, Golden,
                         ::testing::Values("pyramid", "facedetect",
                                           "reyes", "cfd", "raster",
                                           "ldpc", "vidstream"));

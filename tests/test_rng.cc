/**
 * @file
 * Unit tests for the deterministic PCG32 generator.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"

using namespace vp;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.nextU32(), b.nextU32());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.nextU32() == b.nextU32();
    EXPECT_LT(same, 5);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        double v = r.nextDouble();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, NextBelowRespectsBound)
{
    Rng r(9);
    for (std::uint32_t bound : {1u, 2u, 7u, 100u, 1000000u}) {
        for (int i = 0; i < 1000; ++i)
            EXPECT_LT(r.nextBelow(bound), bound);
    }
}

TEST(Rng, NextBelowZeroReturnsZero)
{
    Rng r(3);
    EXPECT_EQ(r.nextBelow(0), 0u);
}

TEST(Rng, NextBelowCoversRange)
{
    Rng r(11);
    std::set<std::uint32_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(r.nextBelow(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextRangeWithinBounds)
{
    Rng r(5);
    for (int i = 0; i < 1000; ++i) {
        double v = r.nextRange(-3.0, 4.5);
        EXPECT_GE(v, -3.0);
        EXPECT_LT(v, 4.5);
    }
}

TEST(Rng, GaussianHasRoughlyUnitVariance)
{
    Rng r(13);
    double sum = 0.0, sumsq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double v = r.nextGaussian();
        sum += v;
        sumsq += v * v;
    }
    double mean = sum / n;
    double var = sumsq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.05);
    EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(Rng, NextBoolMatchesProbability)
{
    Rng r(17);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += r.nextBool(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

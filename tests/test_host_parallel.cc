/**
 * @file
 * Host-parallel multi-device loop tests (engine_group_parallel.cc):
 * the parallel loop must be indistinguishable from the serial group
 * loop in everything but wall-clock time. Replicate-only plans take
 * the exact tier and must match event-for-event (cycles, event and
 * poll counts); pinned plans take the conserving tier and must match
 * the work fingerprint deterministically. Scripted SM faults must
 * land on the right device in the right window. Runs under the
 * `sanitize` and `tsan` ctest labels.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "apps/registry.hh"
#include "core/engine.hh"
#include "core/shard.hh"
#include "tuner/offline_tuner.hh"

using namespace vp;

namespace {

DeviceGroupConfig
twoGtx1080()
{
    return DeviceGroupConfig::homogeneous(
        DeviceConfig::byName("gtx1080"), 2);
}

/** Per-stage processed-item counts (the conservation fingerprint). */
std::map<std::string, std::uint64_t>
fingerprint(const RunResult& r)
{
    std::map<std::string, std::uint64_t> fp;
    for (const StageRunStats& s : r.stages)
        fp[s.name] = s.items + s.deadLettered;
    return fp;
}

RunResult
runWithThreads(const std::string& app, const PipelineConfig& cfg,
               bool pinned, int hostThreads)
{
    auto driver = makeApp(app, AppScale::Small);
    Engine engine(twoGtx1080());
    engine.setHostThreads(hostThreads);
    ShardPlan plan = pinned
        ? ShardPlan::pinnedRoundRobin(cfg, driver->pipeline(), 2)
        : ShardPlan::replicateAll(driver->pipeline());
    return engine.runSharded(*driver, cfg, plan);
}

} // namespace

// Exact tier: a replicate-only plan has no cross-device transfers,
// so the host-parallel loop replays the serial merged schedule
// event for event — cycles, event count, poll count and per-stage
// work all bit-identical for any thread count.
TEST(HostParallel, ReplicatePlansAreBitIdenticalToSerial)
{
    for (const std::string app : {"raster", "pyramid", "ldpc"}) {
        auto driver = makeApp(app, AppScale::Small);
        PipelineConfig cfg =
            makeMegakernelConfig(driver->pipeline());
        RunResult serial = runWithThreads(app, cfg, false, 1);
        ASSERT_TRUE(serial.completed) << app;
        for (int threads : {2, 4}) {
            RunResult par =
                runWithThreads(app, cfg, false, threads);
            ASSERT_TRUE(par.completed)
                << app << " x" << threads << ": "
                << par.failureReason;
            EXPECT_EQ(par.cycles, serial.cycles)
                << app << " x" << threads;
            EXPECT_EQ(par.simEvents, serial.simEvents)
                << app << " x" << threads;
            EXPECT_EQ(par.polls, serial.polls)
                << app << " x" << threads;
            EXPECT_EQ(fingerprint(par), fingerprint(serial))
                << app << " x" << threads;
        }
    }
}

// Conserving tier: pinned plans exchange work over the
// interconnect; the parallel loop replays transfers at window
// barriers, so per-stage work, transfer totals and verification
// must match the serial loop exactly.
TEST(HostParallel, PinnedPlansConserveWorkAndTransfers)
{
    for (const std::string app : {"raster", "pyramid"}) {
        auto driver = makeApp(app, AppScale::Small);
        PipelineConfig cfg =
            makeMegakernelConfig(driver->pipeline());
        RunResult serial = runWithThreads(app, cfg, true, 1);
        ASSERT_TRUE(serial.completed) << app;
        RunResult par = runWithThreads(app, cfg, true, 2);
        ASSERT_TRUE(par.completed)
            << app << ": " << par.failureReason;
        EXPECT_EQ(fingerprint(par), fingerprint(serial)) << app;
        EXPECT_EQ(par.interconnect.transfers,
                  serial.interconnect.transfers)
            << app;
        EXPECT_EQ(par.interconnect.delivered,
                  serial.interconnect.delivered)
            << app;
    }
}

// The conserving tier must also be deterministic run to run: two
// identical parallel runs produce identical cycle and event counts
// (window barriers serialize every cross-device interaction).
TEST(HostParallel, ParallelRunsAreDeterministic)
{
    auto driver = makeApp("raster", AppScale::Small);
    PipelineConfig cfg = makeMegakernelConfig(driver->pipeline());
    RunResult a = runWithThreads("raster", cfg, true, 2);
    RunResult b = runWithThreads("raster", cfg, true, 2);
    ASSERT_TRUE(a.completed);
    ASSERT_TRUE(b.completed);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.simEvents, b.simEvents);
    EXPECT_EQ(a.polls, b.polls);
    EXPECT_EQ(fingerprint(a), fingerprint(b));
}

// Regression for cross-device fault targeting: a scripted SM kill on
// device 1 must land in device 1's event loop in the correct window.
// The group finishes (possibly degraded), only device 1 loses an SM,
// and the result matches the serial loop bit for bit (the scenario
// is replicate-only, i.e. exact tier).
TEST(HostParallel, SmKillOnDeviceOneMatchesSerial)
{
    auto makeEngine = [](int hostThreads) {
        FaultPlan fp;
        SmFaultEvent kill;
        kill.time = 2000.0;
        kill.sm = 0;
        kill.kind = SmFaultEvent::Kind::Kill;
        kill.device = 1;
        fp.smEvents.push_back(kill);
        Engine engine(twoGtx1080());
        engine.setFaultPlan(fp);
        engine.setRecovery(RecoveryConfig{});
        engine.setHostThreads(hostThreads);
        return engine;
    };
    auto runOnce = [&](int hostThreads) {
        auto app = makeApp("raster", AppScale::Small);
        PipelineConfig cfg = makeMegakernelConfig(app->pipeline());
        ShardPlan plan = ShardPlan::replicateAll(app->pipeline());
        Engine engine = makeEngine(hostThreads);
        return engine.runSharded(*app, cfg, plan);
    };

    RunResult serial = runOnce(1);
    RunResult par = runOnce(2);
    for (const RunResult* r : {&serial, &par}) {
        EXPECT_TRUE(r->outcome == RunOutcome::Completed
                    || r->outcome == RunOutcome::Degraded)
            << runOutcomeName(r->outcome) << "\n"
            << r->failureReason;
        ASSERT_EQ(r->shardDevices.size(), 2u);
        EXPECT_EQ(r->shardDevices[0].device.smsFailed, 0u);
        EXPECT_EQ(r->shardDevices[1].device.smsFailed, 1u);
    }
    EXPECT_EQ(par.cycles, serial.cycles);
    EXPECT_EQ(par.simEvents, serial.simEvents);
    EXPECT_EQ(fingerprint(par), fingerprint(serial));
    EXPECT_EQ(par.faults.smsFailed, serial.faults.smsFailed);
}

// Ineligible runs silently fall back to the serial loop and still
// succeed: online adaptation reads shared state mid-window, so a
// config that arms it keeps serial semantics under any hostThreads.
TEST(HostParallel, IneligibleRunsFallBackToSerial)
{
    auto app = makeApp("raster", AppScale::Small);
    PipelineConfig cfg = makeMegakernelConfig(app->pipeline());
    cfg.onlineAdaptation = true;
    ShardPlan plan = ShardPlan::replicateAll(app->pipeline());

    Engine serial(twoGtx1080());
    RunResult r1 = serial.runSharded(*app, cfg, plan);
    Engine par(twoGtx1080());
    par.setHostThreads(2);
    RunResult r2 = par.runSharded(*app, cfg, plan);
    ASSERT_TRUE(r1.completed);
    ASSERT_TRUE(r2.completed);
    EXPECT_EQ(r2.cycles, r1.cycles);
    EXPECT_EQ(r2.simEvents, r1.simEvents);
    EXPECT_EQ(fingerprint(r2), fingerprint(r1));
}

// Observability under the parallel loop: per-device trace shards
// merge into one bundle — events from both devices, batch
// histograms, and summed metrics — and the run stays fingerprint-
// and cycle-identical to an unobserved one (tracing is passive).
TEST(HostParallel, ObservedParallelRunMergesShards)
{
    auto run = [](bool observe) {
        auto app = makeApp("raster", AppScale::Small);
        PipelineConfig cfg = makeMegakernelConfig(app->pipeline());
        ShardPlan plan = ShardPlan::replicateAll(app->pipeline());
        Engine engine(twoGtx1080());
        engine.setHostThreads(2);
        if (observe) {
            ObsConfig oc;
            oc.sampleIntervalCycles = 1000.0;
            engine.setObservability(oc);
        }
        return engine.runSharded(*app, cfg, plan);
    };
    RunResult plain = run(false);
    RunResult obs = run(true);
    ASSERT_TRUE(plain.completed);
    ASSERT_TRUE(obs.completed);
    EXPECT_EQ(obs.cycles, plain.cycles);
    EXPECT_EQ(obs.simEvents, plain.simEvents);
    ASSERT_NE(obs.obs, nullptr);
    EXPECT_GT(obs.obs->tracer.recorded(), 0u);
    EXPECT_FALSE(obs.obs->sampler.series().empty());
    EXPECT_FALSE(obs.obs->stageNames.empty());
}

// The tuner's group sweep under hostThreads=2 picks the identical
// winner (config, plan, cycles) as the serial sweep: eligible
// candidates reproduce serial results and ineligible ones fall back.
TEST(HostParallel, TunerWinnerIdenticalUnderHostThreads)
{
    TunerOptions opts;
    opts.search.smCandidates = 2;
    opts.search.blockCandidates = 2;
    opts.search.maxConfigs = 24;

    auto sweep = [&](int hostThreads) {
        auto app = makeApp("pyramid", AppScale::Small);
        Engine engine(twoGtx1080());
        TunerOptions o = opts;
        o.hostThreads = hostThreads;
        return autotune(engine, *app, o);
    };
    TunerResult serial = sweep(0);
    TunerResult par = sweep(2);
    EXPECT_EQ(par.bestRun.cycles, serial.bestRun.cycles);
    EXPECT_EQ(par.bestRun.configName, serial.bestRun.configName);
    EXPECT_EQ(par.bestSharded, serial.bestSharded);
    EXPECT_EQ(par.bestPlan.describe(), serial.bestPlan.describe());
    EXPECT_EQ(par.evaluated, serial.evaluated);
}

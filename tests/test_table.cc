/**
 * @file
 * Unit tests for the ASCII table formatter.
 */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "common/table.hh"

using namespace vp;

TEST(TextTable, RendersHeaderAndRows)
{
    TextTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    std::string s = t.render();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("-----"), std::string::npos);
}

TEST(TextTable, ColumnsAreAligned)
{
    TextTable t({"a", "b"});
    t.addRow({"xxxx", "y"});
    std::string s = t.render();
    // Each line should start a 'b'-column at the same offset.
    auto first_nl = s.find('\n');
    std::string header = s.substr(0, first_nl);
    EXPECT_EQ(header.find('b'), 6u); // "a" padded to 4 + 2 spaces
}

TEST(TextTable, WrongCellCountThrows)
{
    TextTable t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), FatalError);
}

TEST(TextTable, EmptyHeaderThrows)
{
    EXPECT_THROW(TextTable({}), FatalError);
}

TEST(TextTable, NumFormatsFixedPrecision)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(2.0, 0), "2");
    EXPECT_EQ(TextTable::num(1.5, 3), "1.500");
}

/**
 * @file
 * Unit tests for the offline auto-tuner.
 */

#include <gtest/gtest.h>

#include "toy_apps.hh"
#include "tuner/offline_tuner.hh"

using namespace vp;
using namespace vp::test;

namespace {

TunerOptions
quickOptions()
{
    TunerOptions opts;
    opts.search.smCandidates = 4;
    opts.search.blockCandidates = 4;
    opts.search.maxConfigs = 120;
    return opts;
}

} // namespace

TEST(OfflineTuner, FindsAValidBestConfig)
{
    LinearApp app;
    Engine engine(DeviceConfig::k20c());
    auto result = autotune(engine, app, quickOptions());
    EXPECT_GT(result.evaluated, 5);
    EXPECT_NO_THROW(result.best.validate(app.pipeline(),
                                         DeviceConfig::k20c()));
    EXPECT_TRUE(result.bestRun.completed);
}

TEST(OfflineTuner, BestBeatsOrMatchesEveryFinishedCandidate)
{
    LinearApp app;
    Engine engine(DeviceConfig::k20c());
    auto result = autotune(engine, app, quickOptions());
    for (const auto& [name, cycles] : result.finished)
        EXPECT_LE(result.bestRun.cycles, cycles) << name;
}

TEST(OfflineTuner, TimeoutPrunesSlowCandidates)
{
    LinearApp app(4, 60);
    Engine engine(DeviceConfig::k20c());
    auto result = autotune(engine, app, quickOptions());
    // With timeout-execute, at least some slow candidates abort.
    EXPECT_GT(result.timedOut, 0);
    EXPECT_EQ(result.evaluated,
              result.timedOut
              + static_cast<int>(result.finished.size()));
}

TEST(OfflineTuner, BeatsOrMatchesBaselinesOnRecursiveApp)
{
    RecursiveApp app(24);
    Engine engine(DeviceConfig::k20c());
    auto result = autotune(engine, app, quickOptions());
    auto kbk = engine.run(app, makeKbkConfig());
    auto mk = engine.run(app, makeMegakernelConfig(app.pipeline()));
    EXPECT_LE(result.bestRun.cycles, kbk.cycles);
    EXPECT_LE(result.bestRun.cycles, mk.cycles * 1.001);
}

TEST(OfflineTuner, RerunOfBestReproducesTime)
{
    LinearApp app;
    Engine engine(DeviceConfig::k20c());
    auto result = autotune(engine, app, quickOptions());
    auto rerun = engine.run(app, result.best);
    EXPECT_DOUBLE_EQ(rerun.cycles, result.bestRun.cycles);
}

TEST(OfflineTuner, OnlineAdaptationFlagPropagates)
{
    LinearApp app;
    Engine engine(DeviceConfig::k20c());
    TunerOptions opts = quickOptions();
    opts.onlineAdaptation = true;
    auto result = autotune(engine, app, opts);
    EXPECT_TRUE(result.best.onlineAdaptation);
}

/**
 * @file
 * End-to-end tests of the execution models on the toy pipelines:
 * every model must process every item exactly once and produce the
 * reference results; model-specific structural properties (launch
 * counts, SM bindings, resource effects) are checked against the
 * paper's descriptions.
 */

#include <gtest/gtest.h>

#include "toy_apps.hh"

using namespace vp;
using namespace vp::test;

namespace {

RunResult
runLinear(const PipelineConfig& cfg, int flows = 2, int per_flow = 40)
{
    LinearApp app(flows, per_flow);
    Engine engine(DeviceConfig::k20c());
    RunResult r = engine.run(app, cfg);
    EXPECT_TRUE(r.completed) << "verification failed under "
                             << r.configName;
    return r;
}

RunResult
runRecursive(const PipelineConfig& cfg, int seeds = 10)
{
    RecursiveApp app(seeds);
    Engine engine(DeviceConfig::k20c());
    RunResult r = engine.run(app, cfg);
    EXPECT_TRUE(r.completed) << "verification failed under "
                             << r.configName;
    return r;
}

} // namespace

// ------------------------- correctness -------------------------- //

TEST(Runtime, RtcProcessesAllItems)
{
    LinearApp app;
    auto r = runLinear(makeRtcConfig(app.pipeline()));
    // All three stages run inside one task: only the entry stage has
    // queue traffic.
    EXPECT_EQ(r.stages[0].items, 80u);
    EXPECT_EQ(r.stages[1].queue.pushes, 0u);
    EXPECT_EQ(r.stages[2].queue.pushes, 0u);
}

TEST(Runtime, KbkProcessesAllItems)
{
    LinearApp app;
    auto r = runLinear(makeKbkConfig());
    EXPECT_EQ(r.stages[0].items, 80u);
    EXPECT_EQ(r.stages[1].items, 80u);
    EXPECT_EQ(r.stages[2].items, 80u);
}

TEST(Runtime, KbkStreamProcessesAllItems)
{
    auto r = runLinear(makeKbkStreamConfig(4), 8, 16);
    EXPECT_EQ(r.stages[2].items, 128u);
}

TEST(Runtime, MegakernelProcessesAllItems)
{
    LinearApp app;
    auto r = runLinear(makeMegakernelConfig(app.pipeline()));
    EXPECT_EQ(r.stages[2].items, 80u);
}

TEST(Runtime, CoarseProcessesAllItems)
{
    LinearApp app;
    auto r = runLinear(makeCoarseConfig(app.pipeline(),
                                        DeviceConfig::k20c()));
    EXPECT_EQ(r.stages[2].items, 80u);
}

TEST(Runtime, FineProcessesAllItems)
{
    LinearApp app;
    auto r = runLinear(makeFineConfig(app.pipeline(),
                                      DeviceConfig::k20c()));
    EXPECT_EQ(r.stages[2].items, 80u);
}

TEST(Runtime, DynamicParallelismProcessesAllItems)
{
    auto r = runLinear(makeDynamicParallelismConfig(), 1, 30);
    EXPECT_EQ(r.stages[2].items, 30u);
}

TEST(Runtime, HybridProcessesAllItems)
{
    LinearApp app;
    PipelineConfig cfg;
    StageGroup a, b;
    a.stages = {0, 1};
    a.model = ExecModel::RTC;
    a.sms = {0, 1, 2, 3, 4, 5};
    b.stages = {2};
    b.model = ExecModel::Megakernel;
    b.sms = {6, 7, 8, 9, 10, 11, 12};
    cfg.groups = {a, b};
    auto r = runLinear(cfg);
    EXPECT_EQ(r.stages[2].items, 80u);
}

// ------------------------ recursion ----------------------------- //

TEST(Runtime, KbkHandlesRecursion)
{
    auto r = runRecursive(makeKbkConfig());
    // Recursion forces several host passes: more launches than
    // stages.
    EXPECT_GT(r.host.launches, 3u);
    // Host-side recursion control moved bytes.
    EXPECT_GT(r.host.memcpyBytes, 0.0);
}

TEST(Runtime, MegakernelHandlesRecursion)
{
    RecursiveApp app;
    auto r = runRecursive(makeMegakernelConfig(app.pipeline()));
    // One persistent kernel launch, no per-pass host control.
    EXPECT_EQ(r.host.launches, 1u);
}

TEST(Runtime, CoarseHandlesRecursion)
{
    RecursiveApp app;
    auto r = runRecursive(makeCoarseConfig(app.pipeline(),
                                           DeviceConfig::k20c()));
    EXPECT_EQ(r.host.launches, 3u); // one per stage
}

TEST(Runtime, FineHandlesRecursion)
{
    RecursiveApp app;
    auto r = runRecursive(makeFineConfig(app.pipeline(),
                                         DeviceConfig::k20c()));
    EXPECT_GE(r.stages[0].items, 10u); // recursion re-enters stage 1
}

// ------------------- structural properties ---------------------- //

TEST(Runtime, KbkLaunchesOneKernelPerNonEmptyStagePass)
{
    LinearApp app(1, 40);
    Engine engine(DeviceConfig::k20c());
    auto r = engine.run(app, makeKbkConfig());
    // Linear pipeline, one flow: exactly one launch per stage.
    EXPECT_EQ(r.device.kernelLaunches, 3u);
}

TEST(Runtime, KbkSequencesFlowsSequentially)
{
    // Two flows take roughly twice as long as one under plain KBK.
    auto r1 = runLinear(makeKbkConfig(), 1, 40);
    auto r2 = runLinear(makeKbkConfig(), 2, 40);
    EXPECT_GT(r2.cycles, r1.cycles * 1.5);
}

TEST(Runtime, KbkStreamOverlapsFlows)
{
    auto serial = runLinear(makeKbkConfig(), 8, 16);
    auto streamed = runLinear(makeKbkStreamConfig(8), 8, 16);
    EXPECT_LT(streamed.cycles, serial.cycles);
}

TEST(Runtime, CoarseBindsStagesToDisjointSms)
{
    LinearApp app;
    Engine engine(DeviceConfig::k20c());
    auto cfg = makeCoarseConfig(app.pipeline(), DeviceConfig::k20c());
    auto r = engine.run(app, cfg);
    EXPECT_TRUE(r.completed);
    // Every stage kernel was bound: the config assigned all SMs.
    int assigned = 0;
    for (const auto& g : cfg.groups)
        assigned += static_cast<int>(g.sms.size());
    EXPECT_EQ(assigned, DeviceConfig::k20c().numSms);
}

TEST(Runtime, MegakernelSuffersMergedRegisterPressure)
{
    // Give the middle stage huge register usage: the megakernel
    // inherits it for all stages, the fine pipeline does not. Enough
    // work keeps every stage busy so peak residency is reached.
    LinearApp app(8, 1500);
    app.pipeline().stage(1).resources.regsPerThread = 200;
    Engine engine(DeviceConfig::k20c());
    auto mk = engine.run(app, makeMegakernelConfig(app.pipeline()));
    auto fine = engine.run(app, makeFineConfig(app.pipeline(),
                                               DeviceConfig::k20c()));
    EXPECT_TRUE(mk.completed);
    EXPECT_TRUE(fine.completed);
    // Megakernel: 1 block/SM (255 regs x 256 threads); fine runs
    // more blocks concurrently.
    EXPECT_GT(fine.device.peakResidentBlocks,
              mk.device.peakResidentBlocks);
}

TEST(Runtime, DpPaysPerItemLaunchOverhead)
{
    auto dp = runLinear(makeDynamicParallelismConfig(), 1, 30);
    LinearApp app;
    auto mk = runLinear(makeMegakernelConfig(app.pipeline()), 1, 30);
    EXPECT_GT(dp.cycles, 3.0 * mk.cycles);
    EXPECT_GT(dp.device.kernelLaunches, 30u);
}

TEST(Runtime, BlockMappingRetreatsExcessBlocks)
{
    // Two groups on overlapping block budgets: the runner launches
    // blocksPerSm x SMs blocks; with a tiny budget, retreats stay 0
    // only if placement is exact. Force a refill-style overlaunch by
    // using online adaptation off and verifying the retreat counter
    // stays consistent (no crash, completed run).
    LinearApp app;
    auto cfg = makeFineConfig(app.pipeline(), DeviceConfig::k20c());
    Engine engine(DeviceConfig::k20c());
    auto r = engine.run(app, cfg);
    EXPECT_TRUE(r.completed);
}

TEST(Runtime, OnlineAdaptationRefillsDrainedSms)
{
    // Coarse pipeline with adaptation: when the first stage drains,
    // its SMs refill with later-stage kernels. The workload is large
    // enough to amortize the refill launch overhead.
    LinearApp app(2, 2000);
    auto cfg = makeCoarseConfig(app.pipeline(), DeviceConfig::k20c());
    cfg.onlineAdaptation = true;
    Engine engine(DeviceConfig::k20c());
    auto r = engine.run(app, cfg);
    EXPECT_TRUE(r.completed);
    auto base_cfg = makeCoarseConfig(app.pipeline(),
                                     DeviceConfig::k20c());
    auto base = engine.run(app, base_cfg);
    EXPECT_TRUE(base.completed);
    // Adaptation must not hurt and usually helps.
    EXPECT_LE(r.cycles, base.cycles * 1.10);
}

TEST(Runtime, ResultsAreDeterministic)
{
    LinearApp app;
    Engine engine(DeviceConfig::k20c());
    auto cfg = makeMegakernelConfig(app.pipeline());
    auto a = engine.run(app, cfg);
    auto b = engine.run(app, cfg);
    EXPECT_DOUBLE_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.device.kernelLaunches, b.device.kernelLaunches);
    EXPECT_EQ(a.polls, b.polls);
}

TEST(Runtime, StatsConservation)
{
    LinearApp app(2, 50);
    Engine engine(DeviceConfig::k20c());
    auto r = engine.run(app, makeMegakernelConfig(app.pipeline()));
    // Conservation: every queued item is pushed and popped once.
    for (const auto& st : r.stages)
        EXPECT_EQ(st.queue.pushes, st.queue.pops) << st.name;
    // gen consumed the 100 seeds; work and sink each saw 100 items.
    EXPECT_EQ(r.stages[0].items, 100u);
    EXPECT_EQ(r.stages[1].queue.pushes, 100u);
    EXPECT_EQ(r.stages[2].queue.pushes, 100u);
}

TEST(Runtime, UtilizationBounded)
{
    LinearApp app;
    Engine engine(DeviceConfig::k20c());
    auto r = engine.run(app, makeMegakernelConfig(app.pipeline()));
    EXPECT_GE(r.smUtilization, 0.0);
    EXPECT_LE(r.smUtilization, 1.0);
}

TEST(Runtime, RunTimedTimesOut)
{
    LinearApp app(4, 200);
    Engine engine(DeviceConfig::k20c());
    auto r = engine.runTimed(app, makeKbkConfig(), 100.0);
    EXPECT_FALSE(r.has_value());
}

TEST(Runtime, GtxRunsFasterInWallClock)
{
    LinearApp app(2, 60);
    Engine k20(DeviceConfig::k20c());
    Engine gtx(DeviceConfig::gtx1080());
    auto cfg = makeMegakernelConfig(app.pipeline());
    auto a = k20.run(app, cfg);
    auto b = gtx.run(app, cfg);
    EXPECT_LT(b.ms, a.ms);
}

// Parameterized sweep: every model yields identical sink results.
class AllModelsLinear
    : public ::testing::TestWithParam<int>
{};

TEST_P(AllModelsLinear, ItemConservationAcrossModels)
{
    LinearApp app(2, 25);
    PipelineConfig cfg;
    switch (GetParam()) {
      case 0: cfg = makeRtcConfig(app.pipeline()); break;
      case 1: cfg = makeKbkConfig(); break;
      case 2: cfg = makeKbkStreamConfig(2); break;
      case 3: cfg = makeMegakernelConfig(app.pipeline()); break;
      case 4:
        cfg = makeCoarseConfig(app.pipeline(), DeviceConfig::k20c());
        break;
      case 5:
        cfg = makeFineConfig(app.pipeline(), DeviceConfig::k20c());
        break;
      case 6: cfg = makeDynamicParallelismConfig(); break;
    }
    Engine engine(DeviceConfig::k20c());
    auto r = engine.run(app, cfg);
    EXPECT_TRUE(r.completed) << r.configName;
    EXPECT_EQ(r.stages[2].items, 50u) << r.configName;
}

INSTANTIATE_TEST_SUITE_P(Models, AllModelsLinear,
                         ::testing::Range(0, 7));

/**
 * @file
 * Table 2 reproduction (K20c): absolute execution times of the
 * baseline (RTC/KBK), Megakernel and VersaPipe, the longest-stage
 * time under the VersaPipe configuration, and the data-item size.
 * Pyramid and Face Detection use 32 input images, as in the table.
 *
 * Absolute milliseconds are simulator time: the shape (ordering and
 * ratios) is the reproduction target, not the absolute values.
 */

#include <iostream>

#include "apps/facedetect/facedetect_app.hh"
#include "apps/pyramid/pyramid_app.hh"
#include "bench_util.hh"

using namespace vp;
using namespace vp::bench;

namespace {

struct PaperRow
{
    double kbk, mega, versa, longest;
    int item;
};

PaperRow
paperRow(const std::string& name)
{
    if (name == "pyramid")
        return {14.41, 1.59, 1.37, 0.80, 12};
    if (name == "facedetect")
        return {18.27, 9.09, 5.38, 5.29, 16};
    if (name == "reyes")
        return {15.6, 12.5, 7.7, 4.02, 272};
    if (name == "cfd")
        return {5820, 5430, 3270, 2970, 12};
    if (name == "raster")
        return {32.8, 30.8, 30.7, 30.6, 4};
    return {560, 394, 352, 185, 12}; // ldpc
}

std::unique_ptr<AppDriver>
makeTable2App(const std::string& name)
{
    // Table 2 uses 32 images for Pyramid and Face Detection.
    if (name == "pyramid") {
        pyramid::PyrParams p;
        p.images = 32;
        return std::make_unique<pyramid::PyramidApp>(p);
    }
    if (name == "facedetect") {
        facedetect::FdParams p;
        p.images = 32;
        return std::make_unique<facedetect::FaceDetectApp>(p);
    }
    return makeApp(name);
}

} // namespace

int
main()
{
    DeviceConfig dev = DeviceConfig::k20c();
    header("Table 2 (K20c): execution times");
    std::cout << "(32 images for Pyramid and Face Detection; "
              << "CFD/LDPC iteration counts are scaled down vs the "
              << "paper — compare ratios, not absolute ms)\n\n";

    TextTable table({"program", "kbk/rtc ms", "mega ms", "versa ms",
                     "longest ms", "itemSz", "paper(k/m/v/l)"});
    for (const std::string& name : paperAppNames()) {
        auto app = makeTable2App(name);
        PipelineConfig base_cfg = baselineConfig(*app, dev);
        PipelineConfig mega_cfg = makeMegakernelConfig(
            app->pipeline());
        PipelineConfig versa_cfg = versapipeConfig(name, dev);

        RunResult base = runOn(*app, dev, base_cfg);
        RunResult mega = runOn(*app, dev, mega_cfg);
        RunResult versa = runOn(*app, dev, versa_cfg);
        double longest = longestStageMs(versa, dev, versa_cfg,
                                        app->pipeline());

        int item_bytes = 0;
        for (int s = 0; s < app->pipeline().stageCount(); ++s) {
            item_bytes = std::max(item_bytes,
                                  app->pipeline().stage(s)
                                      .itemBytes());
        }

        PaperRow p = paperRow(name);
        table.addRow({name, TextTable::num(base.ms),
                      TextTable::num(mega.ms),
                      TextTable::num(versa.ms),
                      TextTable::num(longest),
                      std::to_string(item_bytes) + "B",
                      TextTable::num(p.kbk, 1) + "/"
                          + TextTable::num(p.mega, 1) + "/"
                          + TextTable::num(p.versa, 1) + "/"
                          + TextTable::num(p.longest, 1) + " "
                          + std::to_string(p.item) + "B"});
    }
    std::cout << table.render();
    return 0;
}

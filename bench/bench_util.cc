#include "bench_util.hh"

#include <iostream>
#include <map>

#include "gpu/occupancy.hh"

namespace vp::bench {

PipelineConfig
baselineConfig(AppDriver& app, const DeviceConfig& dev)
{
    (void)dev;
    if (app.name() == "raster") {
        // Paper: the original Rasterization is a mix of KBK and RTC
        // (Clip+Interpolate fused, Shade separate).
        PipelineConfig cfg = makeKbkConfig();
        StageGroup fused, shade;
        fused.stages = {0, 1};
        fused.model = ExecModel::RTC;
        shade.stages = {2};
        shade.model = ExecModel::Megakernel;
        cfg.groups = {fused, shade};
        return cfg;
    }
    // All other originals are kernel-by-kernel implementations.
    return makeKbkConfig();
}

std::string
baselineName(const std::string& app)
{
    return app == "raster" ? "KBK+RTC" : "KBK";
}

PipelineConfig
versapipeConfig(const std::string& appName, const DeviceConfig& dev)
{
    static std::map<std::string, PipelineConfig> cache;
    std::string key = appName + "@" + dev.name;
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;

    // Tune at full scale where the real computation is cheap enough;
    // the heavy image apps and CFD tune on the reduced workload, as
    // the paper's profiling pass does.
    bool heavy = appName == "pyramid" || appName == "facedetect"
        || appName == "cfd";
    AppScale scale = heavy ? AppScale::Small : AppScale::Full;
    TunerOptions opts;
    opts.search.smCandidates = 5;
    opts.search.blockCandidates = 6;
    opts.search.maxConfigs = 400;
    opts.onlineAdaptation = false;
    // Sweep candidates on all host threads; the chosen config is
    // bit-identical to the serial sweep (see docs/MODEL.md).
    opts.threads = 0;
    TunerResult tuned = autotuneParallel(
        dev, [&appName, scale] { return makeApp(appName, scale); },
        opts);
    cache.emplace(key, tuned.best);
    return tuned.best;
}

RunResult
runOn(AppDriver& app, const DeviceConfig& dev,
      const PipelineConfig& cfg)
{
    Engine engine(dev);
    RunResult r = engine.run(app, cfg);
    VP_REQUIRE(r.completed, app.name()
               << ": verification failed under " << r.configName);
    return r;
}

double
longestStageMs(const RunResult& run, const DeviceConfig& dev,
               const PipelineConfig& cfg, Pipeline& pipe)
{
    double longest = 0.0;
    for (int s = 0; s < pipe.stageCount(); ++s) {
        // Blocks the configuration dedicates to this stage.
        int blocks = 0;
        for (const StageGroup& g : cfg.groups) {
            bool contains = false;
            for (int gs : g.stages)
                contains = contains || gs == s;
            if (!contains)
                continue;
            int sms = g.sms.empty() ? dev.numSms
                                    : static_cast<int>(g.sms.size());
            int per_sm = 1;
            if (g.model == ExecModel::FinePipeline) {
                auto it = g.blocksPerSm.find(s);
                per_sm = it != g.blocksPerSm.end() && it->second > 0
                    ? it->second
                    : 1;
            } else {
                auto it = g.blocksPerSm.find(-1);
                if (it != g.blocksPerSm.end() && it->second > 0) {
                    per_sm = it->second;
                } else {
                    per_sm = std::max(
                        1, maxBlocksPerSm(dev,
                                          mergedResources(pipe,
                                                          g.stages),
                                          cfg.threadsPerBlock)
                               .blocksPerSm);
                }
            }
            blocks = sms * per_sm;
        }
        if (blocks == 0)
            blocks = dev.numSms;
        double span = run.stages[s].execCycles / blocks;
        longest = std::max(longest, span);
    }
    return dev.cyclesToMs(longest);
}

std::optional<std::string>
parseDeviceArg(int argc, char** argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        const std::string prefix = "--device=";
        if (arg.rfind(prefix, 0) == 0)
            return arg.substr(prefix.size());
    }
    return std::nullopt;
}

void
header(const std::string& title)
{
    std::cout << "\n=== " << title << " ===\n\n";
}

} // namespace vp::bench

/**
 * @file
 * Figure 11 reproduction: speedup of Megakernel and VersaPipe over
 * the original (RTC/KBK) implementations, on K20c (Fig. 11a) and
 * GTX 1080 (Fig. 11b). Speedups are normalized to the baseline of
 * each application, exactly as in the paper.
 *
 * Usage: fig11_overall [--device=k20c|gtx1080]
 */

#include <cmath>
#include <iostream>
#include <map>

#include "bench_util.hh"

using namespace vp;
using namespace vp::bench;

namespace {

struct PaperRow
{
    double megakernel;
    double versapipe;
};

// Speedups read off Figure 11 / derived from Table 2 (K20c) and the
// overall statements for GTX 1080 (avg 2.7x over baseline, 1.2x
// over Megakernel).
const std::map<std::string, PaperRow> kPaperK20c = {
    {"pyramid", {14.41 / 1.59, 14.41 / 1.37}},
    {"facedetect", {18.27 / 9.09, 18.27 / 5.38}},
    {"reyes", {15.6 / 12.5, 15.6 / 7.7}},
    {"cfd", {5820.0 / 5430.0, 5820.0 / 3270.0}},
    {"raster", {32.8 / 30.8, 32.8 / 30.7}},
    {"ldpc", {560.0 / 394.0, 560.0 / 352.0}},
};

void
runDevice(const std::string& device_name)
{
    DeviceConfig dev = DeviceConfig::byName(device_name);
    header("Figure 11 (" + device_name + "): speedup over original");

    TextTable table({"app", "baseline", "mega x", "versa x",
                     "paper mega x", "paper versa x", "versa config"});
    double geo_mega = 1.0, geo_versa = 1.0;
    int count = 0;
    for (const std::string& name : paperAppNames()) {
        auto app = makeApp(name);
        PipelineConfig base_cfg = baselineConfig(*app, dev);
        PipelineConfig mega_cfg = makeMegakernelConfig(
            app->pipeline());
        PipelineConfig versa_cfg = versapipeConfig(name, dev);

        RunResult base = runOn(*app, dev, base_cfg);
        RunResult mega = runOn(*app, dev, mega_cfg);
        RunResult versa = runOn(*app, dev, versa_cfg);

        double sm = base.ms / mega.ms;
        double sv = base.ms / versa.ms;
        geo_mega *= sm;
        geo_versa *= sv;
        ++count;

        std::string paper_m = "-", paper_v = "-";
        if (device_name == "k20c") {
            paper_m = TextTable::num(kPaperK20c.at(name).megakernel);
            paper_v = TextTable::num(kPaperK20c.at(name).versapipe);
        }
        table.addRow({name, baselineName(name), TextTable::num(sm),
                      TextTable::num(sv), paper_m, paper_v,
                      versa.configName});
    }
    std::cout << table.render();
    std::cout << "\ngeomean speedup: Megakernel "
              << TextTable::num(std::pow(geo_mega, 1.0 / count))
              << "x, VersaPipe "
              << TextTable::num(std::pow(geo_versa, 1.0 / count))
              << "x  (paper K20c: avg 2.88x over baseline, up to "
              << "1.66x over Megakernel)\n";
}

} // namespace

int
main(int argc, char** argv)
{
    auto only = parseDeviceArg(argc, argv);
    if (only) {
        runDevice(*only);
    } else {
        runDevice("k20c");
        runDevice("gtx1080");
    }
    return 0;
}

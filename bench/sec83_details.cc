/**
 * @file
 * Section 8.3 structural claims: per-stage register usage and
 * occupancy, megakernel register merging, concurrent block counts,
 * and KBK kernel-launch counts, checked against the numbers quoted
 * in the paper's per-application analysis.
 */

#include <iostream>

#include "apps/cfd/cfd_app.hh"
#include "bench_util.hh"
#include "gpu/occupancy.hh"

using namespace vp;
using namespace vp::bench;

namespace {

void
stageTable(const std::string& name, const DeviceConfig& dev)
{
    auto app = makeApp(name);
    Pipeline& pipe = app->pipeline();
    std::cout << name << ":\n";
    TextTable t({"stage", "regs/thread", "blockThreads",
                 "max blocks/SM", "limiter", "code KiB"});
    for (int s = 0; s < pipe.stageCount(); ++s) {
        const StageBase& st = pipe.stage(s);
        int bt = st.blockThreads > 0 ? st.blockThreads : 256;
        auto occ = maxBlocksPerSm(dev, st.resources, bt);
        t.addRow({st.name,
                  std::to_string(st.resources.regsPerThread),
                  std::to_string(bt),
                  std::to_string(occ.blocksPerSm),
                  limiterName(occ.limiter),
                  TextTable::num(st.resources.codeBytes / 1024.0,
                                 1)});
    }
    // Megakernel merge.
    std::vector<int> all(pipe.stageCount());
    for (int s = 0; s < pipe.stageCount(); ++s)
        all[s] = s;
    ResourceUsage merged = mergedResources(pipe, all);
    merged.regsPerThread = std::min(
        255, merged.regsPerThread + pipe.megakernelExtraRegs);
    auto mocc = maxBlocksPerSm(dev, merged, 256);
    t.addRow({"(megakernel)",
              std::to_string(merged.regsPerThread), "256",
              std::to_string(mocc.blocksPerSm),
              limiterName(mocc.limiter),
              TextTable::num(merged.codeBytes / 1024.0, 1)});
    std::cout << t.render();

    // Concurrent blocks: Megakernel vs VersaPipe.
    RunResult mk = runOn(*app, dev, makeMegakernelConfig(pipe));
    RunResult vp = runOn(*app, dev, versapipeConfig(name, dev));
    std::cout << "peak concurrent blocks: Megakernel "
              << mk.device.peakResidentBlocks << ", VersaPipe "
              << vp.device.peakResidentBlocks << "  ["
              << vp.configName << "]\n\n";
}

} // namespace

int
main(int argc, char** argv)
{
    auto device = parseDeviceArg(argc, argv);
    DeviceConfig dev = DeviceConfig::byName(device.value_or("k20c"));
    header("Section 8.3 structural details (" + dev.name + ")");

    std::cout
        << "paper quotes (K20c): Reyes stages 111/255/61 regs, "
        << "megakernel 255 -> 1 block/SM;\nFace Detection stages "
        << "56/69/56/61/37 regs (3..6 blocks/SM), megakernel 87 -> "
        << "2 blocks/SM;\nPyramid: VersaPipe 60 vs Megakernel 39 "
        << "concurrent blocks; LDPC megakernel 60 regs -> 4 "
        << "blocks/SM.\n\n";

    for (const std::string& name : paperAppNames())
        stageTable(name, dev);

    // KBK kernel-call structure (paper: Reyes 16 calls; CFD 7 per
    // outer iteration, i.e., 14000 calls at 2000 iterations).
    header("KBK kernel-launch counts");
    TextTable t({"app", "kbk launches", "paper note"});
    {
        auto reyes_app = makeApp("reyes");
        RunResult r = runOn(*reyes_app, dev, makeKbkConfig());
        t.addRow({"reyes", std::to_string(r.device.kernelLaunches),
                  "paper: 16 calls"});
        cfd::CfdApp capp{};
        RunResult c = runOn(capp, dev, makeKbkConfig());
        t.addRow({"cfd", std::to_string(c.device.kernelLaunches),
                  "7 per outer iteration (paper: 14000 at 2000 "
                  "iterations; here "
                      + std::to_string(capp.params().outerIters)
                      + " iterations)"});
    }
    std::cout << t.render();
    return 0;
}

/**
 * @file
 * Shared helpers for the experiment-reproduction benchmark binaries:
 * per-app baseline selection, tuned "VersaPipe" configurations, and
 * paper-vs-measured table formatting.
 */

#ifndef VP_BENCH_BENCH_UTIL_HH
#define VP_BENCH_BENCH_UTIL_HH

#include <optional>
#include <string>
#include <vector>

#include "apps/registry.hh"
#include "common/table.hh"
#include "core/engine.hh"
#include "tuner/offline_tuner.hh"

namespace vp::bench {

/** The baseline ("original implementation") model of an app. */
PipelineConfig baselineConfig(AppDriver& app, const DeviceConfig& dev);

/** Display name of an app's baseline model (Fig. 11 x-axis note). */
std::string baselineName(const std::string& app);

/**
 * Autotune @p app (at small scale) on @p dev and return the best
 * configuration — the "VersaPipe" entry of every experiment. Results
 * are memoized per (app, device) within the process.
 */
PipelineConfig versapipeConfig(const std::string& appName,
                               const DeviceConfig& dev);

/** Run @p app under @p cfg on @p dev; fatal if verification fails. */
RunResult runOn(AppDriver& app, const DeviceConfig& dev,
                const PipelineConfig& cfg);

/**
 * Longest-stage time (Table 2, "Longest Stage" column): the summed
 * execution time of the busiest stage divided by the number of
 * blocks the configuration dedicates to it (the paper's
 * no-queuing-overhead single-stage measurement).
 */
double longestStageMs(const RunResult& run, const DeviceConfig& dev,
                      const PipelineConfig& cfg, Pipeline& pipe);

/** Parse --device=<name> (default: both devices are used). */
std::optional<std::string> parseDeviceArg(int argc, char** argv);

/** Print a section header. */
void header(const std::string& title);

} // namespace vp::bench

#endif // VP_BENCH_BENCH_UTIL_HH

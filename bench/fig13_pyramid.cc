/**
 * @file
 * Figure 13 reproduction: Image Pyramid execution time versus number
 * of input images under KBK, KBK with streams, Megakernel and
 * VersaPipe (K20c). The paper's qualitative findings: VersaPipe
 * fastest everywhere, Megakernel second, KBK+Stream recovers part of
 * KBK's loss, and differences shrink for very small inputs.
 */

#include <iostream>

#include "apps/pyramid/pyramid_app.hh"
#include "bench_util.hh"

using namespace vp;
using namespace vp::bench;

int
main(int argc, char** argv)
{
    auto device = parseDeviceArg(argc, argv);
    DeviceConfig dev = DeviceConfig::byName(device.value_or("k20c"));
    header("Figure 13: Image Pyramid vs input size (" + dev.name
           + ")");

    PipelineConfig versa = versapipeConfig("pyramid", dev);

    TextTable table({"images", "kbk ms", "kbk+stream ms", "mega ms",
                     "versa ms", "versa speedup vs kbk"});
    for (int images = 1; images <= 10; ++images) {
        pyramid::PyrParams params;
        params.images = images;
        pyramid::PyramidApp app(params);

        RunResult kbk = runOn(app, dev, makeKbkConfig());
        RunResult streams = runOn(app, dev, makeKbkStreamConfig(4));
        RunResult mega = runOn(app, dev,
                               makeMegakernelConfig(app.pipeline()));
        RunResult vp = runOn(app, dev, versa);

        table.addRow({std::to_string(images),
                      TextTable::num(kbk.ms),
                      TextTable::num(streams.ms),
                      TextTable::num(mega.ms),
                      TextTable::num(vp.ms),
                      TextTable::num(kbk.ms / vp.ms) + "x"});
    }
    std::cout << table.render();
    std::cout << "\npaper (Fig. 13, 8 images): KBK slowest, "
              << "KBK+Stream intermediate, VersaPipe fastest; "
              << "differences less prominent under 5 images.\n";
    return 0;
}

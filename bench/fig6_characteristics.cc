/**
 * @file
 * Figure 6 reproduction: the qualitative characteristics matrix of
 * the five primary execution models over the seven metrics A-G.
 */

#include <iostream>

#include "bench_util.hh"

using namespace vp;
using namespace vp::bench;

int
main()
{
    header("Figure 6: characteristics of each pipeline model");

    std::vector<std::string> headers = {"metric"};
    for (ExecModel m : kFigure6Models)
        headers.push_back(execModelName(m));
    TextTable table(headers);
    for (ModelMetric metric : kAllMetrics) {
        std::vector<std::string> row = {modelMetricName(metric)};
        for (ExecModel m : kFigure6Models)
            row.push_back(metricLevelName(
                modelCharacteristic(m, metric)));
        table.addRow(row);
    }
    std::cout << table.render();
    std::cout << "\nlevels: poor < fair < good (paper Fig. 6). No "
              << "single model is best on all metrics, motivating "
              << "the hybrid pipeline.\n";
    return 0;
}

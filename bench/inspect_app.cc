/**
 * @file
 * Diagnostic harness: per-stage breakdown of one application under
 * the baseline, Megakernel and tuned VersaPipe configurations.
 *
 * Usage: inspect_app [--device=k20c|gtx1080] [app...]
 */

#include <iostream>

#include "bench_util.hh"

using namespace vp;
using namespace vp::bench;

namespace {

void
show(const std::string& name, const DeviceConfig& dev)
{
    header(name + " on " + dev.name);
    auto app = makeApp(name);
    struct Entry { std::string label; PipelineConfig cfg; };
    std::vector<Entry> entries = {
        {"baseline", baselineConfig(*app, dev)},
        {"megakernel", makeMegakernelConfig(app->pipeline())},
        {"versapipe", versapipeConfig(name, dev)},
    };
    for (auto& [label, cfg] : entries) {
        RunResult r = runOn(*app, dev, cfg);
        std::cout << label << ": " << TextTable::num(r.ms, 3)
                  << " ms  [" << r.configName << "]\n";
        TextTable t({"stage", "items", "batches", "exec ms",
                     "queue ops ms", "contention ms", "max depth"});
        for (const auto& s : r.stages) {
            t.addRow({s.name, std::to_string(s.items),
                      std::to_string(s.batches),
                      TextTable::num(dev.cyclesToMs(s.execCycles), 3),
                      TextTable::num(
                          dev.cyclesToMs(s.queue.opCycles), 3),
                      TextTable::num(
                          dev.cyclesToMs(s.queue.contentionCycles),
                          3),
                      std::to_string(s.queue.maxDepth)});
        }
        std::cout << t.render();
        std::cout << "launches=" << r.device.kernelLaunches
                  << " peakBlocks=" << r.device.peakResidentBlocks
                  << " polls=" << r.polls
                  << " retreats=" << r.retreats
                  << " util=" << TextTable::num(r.smUtilization, 3)
                  << "\n\n";
    }
}

} // namespace

int
main(int argc, char** argv)
{
    auto device = parseDeviceArg(argc, argv);
    DeviceConfig dev = DeviceConfig::byName(device.value_or("k20c"));
    std::vector<std::string> apps;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0)
            apps.push_back(arg);
    }
    if (apps.empty())
        apps = appNames();
    for (const std::string& name : apps)
        show(name, dev);
    return 0;
}

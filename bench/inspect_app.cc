/**
 * @file
 * Diagnostic harness: per-stage breakdown of one application under
 * the baseline, Megakernel and tuned VersaPipe configurations, with
 * optional observability exports (trace / report / time-series).
 *
 * Usage: inspect_app [--device=k20c|gtx1080] [app...]
 *                    [--config=baseline|megakernel|versapipe] [--only]
 *                    [--devices=N] [--shard=replicate|rr|pin:d0,d1,..]
 *                    [--host-threads=N]
 *                    [--kill-device=<dev>@<cycle>]
 *                    [--fail-link=<src>-><dst>@<cycle>]
 *                    [--adaptive[=epochCycles]]
 *                    [--trace=out.json] [--report=out.report.json]
 *                    [--csv=out.csv] [--sample=N]
 *                    [--latency] [--critical-path[=N]] [--flow]
 *                    [--prov-sample=K]
 *                    [--serve] [--tenants=N] [--rate=R]
 *                    [--epoch=C] [--horizon=C]
 *                    [--overload=shed|queue] [--deadline=C]
 *
 * The provenance flags arm per-item lineage tracking on the
 * instrumented run (docs/MODEL.md, "Item provenance & critical
 * path"). --latency prints the per-stage queue-wait / service
 * decomposition with per-item latency percentiles — the bottleneck
 * attribution table. --critical-path walks the lineage of the
 * last-finishing item and prints the top N (default 10) ranked
 * path segments: stages, queues and interconnect links that the
 * makespan is actually made of. --flow adds Perfetto flow arrows
 * linking each item's producing batch to its consuming batch in the
 * --trace output. --prov-sample=K tracks every K-th seed lineage
 * (default 1 = all).
 *
 * --adaptive arms the online load-balance controller (default epoch
 * 50000 cycles) on every configuration with an adjustable
 * block-to-stage partition — FinePipeline groups of two or more
 * stages — and reports the controller's epoch and migration counts.
 * Other configurations run unchanged.
 *
 * --devices=N runs the Groups configurations (megakernel/versapipe)
 * sharded over N identical devices joined by the default peer
 * interconnect, under the --shard plan (default replicate), and adds
 * per-device utilization plus interconnect totals to the output.
 * Host-sequenced configurations (the KBK baseline) stay on one
 * device. --host-threads=N drives eligible sharded runs with N host
 * threads (one event loop per device, docs/MODEL.md); results are
 * identical to the serial group loop.
 *
 * --kill-device and --fail-link (both repeatable) script failover
 * chaos into the sharded runs: the named device dies (or the
 * directed interconnect path fails) at the given simulated cycle,
 * pinned stages re-home onto survivors, and the run reports a
 * Degraded outcome with a failover summary. Both flags require
 * --devices=N with N > 1.
 *
 * --serve runs the FIRST app as a pipeline service instead of a
 * one-shot batch (docs/MODEL.md, "Serving layer & SLO semantics"):
 * --tenants open-loop tenants (descending priority, staggered
 * token-bucket quotas) each offer --rate requests per kilocycle
 * until --horizon, batched into pipeline seeds every --epoch cycles
 * by the token-bucket admission controller; request k re-seeds the
 * app's flow k mod flowCount. Prints per-tenant admission and
 * end-to-end latency percentiles with SLO verdicts. Serving needs a
 * persistent-blocks configuration, so the run uses the megakernel
 * config (or --config=versapipe when that maps to a Groups top);
 * --devices=N serves sharded. --report includes the "serving"
 * section. --deadline=C arms a per-request completion deadline of C
 * cycles on every tenant: the table gains a deadline hit-rate
 * column (a request finishing exactly at the deadline is a hit) and
 * the summary line reports the run-wide miss count. Serving
 * vidstream swaps the flow workload for its frame clock — request k
 * of tenant t is the next frame of camera t, so the hit-rate is the
 * per-frame deadline metric of the camera's stream.
 *
 * The export flags instrument the selected configuration (default:
 * versapipe) of the FIRST app shown. --trace writes a
 * chrome://tracing / Perfetto trace_event file, --report a full JSON
 * report (stats, histograms, time-series), --csv the sampled
 * time-series alone, and --sample=N sets the sampling period in
 * simulated cycles (default 1000 when an export is requested).
 */

#include <fstream>
#include <iostream>

#include "bench_util.hh"
#include "obs/report.hh"
#include "apps/vidstream/vidstream_app.hh"
#include "serve/serving_engine.hh"

using namespace vp;
using namespace vp::bench;

namespace {

struct ObsOptions
{
    std::string tracePath;
    std::string reportPath;
    std::string csvPath;
    std::string config = "versapipe";
    Tick sampleCycles = 0.0;
    /** Devices to shard Groups configurations over (1 = plain run). */
    int devices = 1;
    /** Shard plan spec: replicate, rr, or pin:<d0>,<d1>,... */
    std::string shard = "replicate";
    /** Host threads for sharded runs (1 = serial group loop). */
    int hostThreads = 1;
    /** Scripted device kills / link failures for sharded runs. */
    FaultPlan faults;
    /** Arm the online load-balance controller where applicable. */
    bool adaptive = false;
    /** Controller epoch override (<= 0 keeps the default). */
    Tick adaptiveEpoch = 0.0;
    /** Show only the instrumented config (skips autotuning when the
     *  selected config is not versapipe — used by the ctest entry). */
    bool only = false;
    /** Print the per-stage wait/service latency decomposition. */
    bool latency = false;
    /** Ranked critical-path segments to print (-1 = off, 0 = all). */
    int criticalPath = -1;
    /** Emit lineage flow events into the --trace output. */
    bool flow = false;
    /** Track every K-th seed lineage (1 = all). */
    std::uint64_t provSample = 1;
    /** Serving mode (--serve): continuous request ingest instead of
     *  the one-shot batch runs. */
    bool serve = false;
    int serveTenants = 2;
    /** Offered load per tenant, requests per kilocycle. */
    double serveRate = 0.25;
    Tick serveEpoch = 2000.0;
    Tick serveHorizon = 60000.0;
    OverloadPolicy serveOverload = OverloadPolicy::Shed;
    /** Per-request deadline, cycles (0 = none). */
    double serveDeadline = 0.0;

    bool provWanted() const
    {
        return latency || criticalPath >= 0 || flow;
    }

    bool wanted() const
    {
        return !tracePath.empty() || !reportPath.empty()
            || !csvPath.empty() || provWanted();
    }

    bool chaos() const
    {
        return !faults.deviceEvents.empty()
            || !faults.linkEvents.empty();
    }
};

/** Parse "<dev>@<cycle>" into a scripted device kill. */
DeviceFaultEvent
parseKillDevice(const std::string& v)
{
    std::size_t at = v.find('@');
    VP_REQUIRE(at != std::string::npos && at > 0,
               "--kill-device wants <dev>@<cycle>, got `" << v << "`");
    DeviceFaultEvent e;
    e.device = std::stoi(v.substr(0, at));
    e.time = std::stod(v.substr(at + 1));
    return e;
}

/** Parse "<src>-><dst>@<cycle>" into a scripted link failure. */
LinkFaultEvent
parseFailLink(const std::string& v)
{
    std::size_t arrow = v.find("->");
    std::size_t at = v.find('@');
    VP_REQUIRE(arrow != std::string::npos && at != std::string::npos
                   && arrow > 0 && at > arrow + 2,
               "--fail-link wants <src>-><dst>@<cycle>, got `" << v
               << "`");
    LinkFaultEvent e;
    e.src = std::stoi(v.substr(0, arrow));
    e.dst = std::stoi(v.substr(arrow + 2, at - arrow - 2));
    e.time = std::stod(v.substr(at + 1));
    e.kind = LinkFaultEvent::Kind::Fail;
    return e;
}

void
writeFile(const std::string& path, const std::string& what,
          const std::function<void(std::ostream&)>& writer)
{
    std::ofstream out(path);
    VP_REQUIRE(out.good(), "cannot open `" << path
               << "` for writing");
    writer(out);
    std::cout << "wrote " << what << " -> " << path << "\n";
}

/**
 * Per-stage bottleneck attribution: how long tracked items sat in
 * each stage's queue vs. were serviced by it, with per-item
 * percentiles from the finalized provenance histograms.
 */
void
showLatency(const ObsData& obs, const DeviceConfig& dev)
{
    const ProvenanceTracker& pv = *obs.provenance;
    auto decomp = pv.stageDecomposition();
    double total = 0.0;
    for (const StageDecomposition& d : decomp)
        total += d.waitCycles + d.serviceCycles;
    auto pct = [&](const std::string& name, double p) -> std::string {
        auto it = obs.metrics.histograms().find(name);
        if (it == obs.metrics.histograms().end()
            || it->second.empty())
            return "-";
        return TextTable::num(
            dev.cyclesToMs(it->second.percentile(p)), 4);
    };
    std::cout << "latency decomposition (tracked items):\n";
    TextTable t({"stage", "waits", "wait ms", "wait p95 ms",
                 "services", "service ms", "svc p95 ms", "share"});
    for (const StageDecomposition& d : decomp) {
        double share = total > 0.0
            ? (d.waitCycles + d.serviceCycles) / total
            : 0.0;
        t.addRow({d.name, std::to_string(d.waits),
                  TextTable::num(dev.cyclesToMs(d.waitCycles), 3),
                  pct("prov/wait/" + d.name, 0.95),
                  std::to_string(d.services),
                  TextTable::num(dev.cyclesToMs(d.serviceCycles), 3),
                  pct("prov/service/" + d.name, 0.95),
                  TextTable::num(100.0 * share, 1) + "%"});
    }
    std::cout << t.render();
    std::cout << "e2e per-item ms: p50=" << pct("prov/e2e_cycles", 0.50)
              << " p95=" << pct("prov/e2e_cycles", 0.95)
              << " p99=" << pct("prov/e2e_cycles", 0.99)
              << "  transfer ms total="
              << TextTable::num(
                     dev.cyclesToMs(pv.transferCyclesTotal()), 3)
              << "\n";
}

/** Ranked attribution of the last-finishing item's lineage chain. */
void
showCriticalPath(const ObsData& obs, const DeviceConfig& dev,
                 double runCycles, int topN)
{
    const ProvenanceTracker& pv = *obs.provenance;
    auto path = pv.criticalPath();
    if (path.empty()) {
        std::cout << "critical path: no completed tracked items\n";
        return;
    }
    double pathCycles = 0.0;
    for (const PathSegment& seg : path)
        pathCycles += seg.cycles;
    std::cout << "critical path: " << path.size() << " hops, "
              << TextTable::num(dev.cyclesToMs(pathCycles), 3)
              << " ms";
    if (runCycles > 0.0)
        std::cout << " ("
                  << TextTable::num(100.0 * pathCycles / runCycles, 1)
                  << "% of makespan)";
    std::cout << "\n";
    auto ranked = pv.rankedCriticalSegments(
        topN > 0 ? static_cast<std::size_t>(topN) : 0);
    TextTable t({"segment", "ms", "path share"});
    for (const auto& [label, cycles] : ranked)
        t.addRow({label, TextTable::num(dev.cyclesToMs(cycles), 4),
                  TextTable::num(100.0 * cycles / pathCycles, 1)
                      + "%"});
    std::cout << t.render();
}

void
exportObs(const RunResult& r, const DeviceConfig& dev,
          const ObsOptions& opts)
{
    VP_REQUIRE(r.obs, "run carried no observability data");
    const ObsData& obs = *r.obs;
    if (!opts.tracePath.empty()) {
        const ProvenanceTracker* flows =
            opts.flow ? obs.provenance.get() : nullptr;
        writeFile(opts.tracePath, "trace",
                  [&obs, flows](std::ostream& out) {
                      exportTraceJson(out, obs.tracer, flows);
                  });
    }
    if (!opts.reportPath.empty()) {
        writeFile(opts.reportPath, "report", [&r](std::ostream& out) {
            writeReportJson(out, r);
        });
    }
    if (!opts.csvPath.empty()) {
        writeFile(opts.csvPath, "time-series csv",
                  [&obs](std::ostream& out) {
                      writeTimeSeriesCsv(out, obs);
                  });
    }

    // Per-stage batch-latency percentiles, the at-a-glance view of
    // where time goes inside the pipeline.
    TextTable t({"stage", "batches", "p50 ms", "p95 ms", "p99 ms",
                 "mean ms", "stddev ms"});
    for (std::size_t s = 0; s < obs.stageBatchCycles.size(); ++s) {
        const Histogram& h = obs.stageBatchCycles[s];
        if (h.empty())
            continue;
        t.addRow({obs.stageNames[s],
                  std::to_string(h.count()),
                  TextTable::num(dev.cyclesToMs(h.percentile(0.50)), 4),
                  TextTable::num(dev.cyclesToMs(h.percentile(0.95)), 4),
                  TextTable::num(dev.cyclesToMs(h.percentile(0.99)), 4),
                  TextTable::num(dev.cyclesToMs(h.mean()), 4),
                  TextTable::num(dev.cyclesToMs(h.stddev()), 4)});
    }
    std::cout << t.render();
    std::cout << "trace events recorded=" << obs.tracer.recorded()
              << " dropped=" << obs.tracer.dropped()
              << " series=" << obs.sampler.series().size() << "\n";
    if (obs.tracer.dropped() > 0)
        std::cout << "WARNING: trace ring overflowed — the "
                  << obs.tracer.dropped()
                  << " oldest events were overwritten; the exported "
                     "trace is missing its earliest history "
                     "(increase ObsConfig::traceCapacity)\n";

    if (obs.provenance) {
        const ProvenanceTracker& pv = *obs.provenance;
        std::cout << "provenance: tracked " << pv.seedsTracked()
                  << "/" << pv.seedsSeen() << " seed lineages";
        if (pv.sampleEvery() > 1)
            std::cout << " (every " << pv.sampleEvery() << "th)";
        std::cout << ", " << pv.records().size() << " items: "
                  << pv.countByFate(ItemFate::Completed)
                  << " completed, "
                  << pv.countByFate(ItemFate::DeadLettered)
                  << " dead-lettered, "
                  << pv.countByFate(ItemFate::Dropped) << " dropped, "
                  << pv.countByFate(ItemFate::Open) << " open\n";
        if (opts.latency)
            showLatency(obs, dev);
        if (opts.criticalPath >= 0)
            showCriticalPath(obs, dev, r.cycles, opts.criticalPath);
    }
    std::cout << "\n";
}

/**
 * --serve: run one app as a pipeline service. N open-loop tenants in
 * descending priority, each offering --rate requests per kilocycle;
 * token-bucket quotas stagger from 1.5x the offered load (tenant 0)
 * down to 0.5x (the last tenant), so the tail tenant visibly sheds
 * under the default Shed policy. The loose default SLO — p99 within
 * ten horizons — keeps the verdict column live without CLI knobs
 * while only tripping on a service that is badly behind its load.
 */
void
serveApp(const std::string& name, const DeviceConfig& dev,
         const ObsOptions& opts)
{
    std::string where = dev.name;
    if (opts.devices > 1)
        where += " x" + std::to_string(opts.devices)
            + " shard=" + opts.shard;
    header(name + " served on " + where);

    auto app = makeApp(name);
    PipelineConfig cfg = makeMegakernelConfig(app->pipeline());
    std::string label = "megakernel";
    if (opts.config == "versapipe") {
        PipelineConfig v = versapipeConfig(name, dev);
        if (v.top == PipelineConfig::Top::Groups) {
            cfg = v;
            label = "versapipe";
        }
    }

    ServeConfig sc;
    sc.seed = 42;
    sc.epochCycles = opts.serveEpoch;
    sc.horizonCycles = opts.serveHorizon;
    sc.overload = opts.serveOverload;
    if (sc.overload == OverloadPolicy::Queue)
        sc.queueCapacity = 64;
    double perCycle = opts.serveRate / 1000.0;
    for (int t = 0; t < opts.serveTenants; ++t) {
        TenantConfig tc;
        tc.name = "t" + std::to_string(t);
        tc.priority = opts.serveTenants - 1 - t;
        double quota = opts.serveTenants > 1
            ? 1.5 - static_cast<double>(t) / (opts.serveTenants - 1)
            : 1.5;
        tc.tokensPerCycle = perCycle * quota;
        tc.burstTokens = 4.0;
        tc.sloP99Cycles = 10.0 * opts.serveHorizon;
        tc.deadlineCycles = opts.serveDeadline;
        ClientConfig cc;
        cc.kind = ArrivalKind::OpenLoop;
        cc.meanInterarrivalCycles = 1000.0 / opts.serveRate;
        tc.clients.push_back(cc);
        sc.tenants.push_back(tc);
    }

    // vidstream serves on its frame clock (tenant = camera); every
    // other app re-seeds flow k mod flowCount.
    std::unique_ptr<ServingWorkload> wlOwned;
    if (auto* vs = dynamic_cast<vidstream::VidstreamApp*>(app.get()))
        wlOwned = std::make_unique<vidstream::VsFrameWorkload>(*vs);
    else
        wlOwned = std::make_unique<FlowServingWorkload>(*app);
    ServingWorkload& wl = *wlOwned;
    RunResult r;
    if (opts.devices > 1) {
        Engine engine(
            DeviceGroupConfig::homogeneous(dev, opts.devices));
        if (opts.wanted()) {
            ObsConfig oc;
            oc.sampleIntervalCycles = opts.sampleCycles;
            engine.setObservability(oc);
        }
        Pipeline& pipe = app->pipeline();
        ShardPlan plan = opts.shard == "rr"
            ? ShardPlan::pinnedRoundRobin(cfg, pipe, opts.devices)
            : ShardPlan::parse(opts.shard, pipe, opts.devices);
        ServingEngine serve(engine, sc);
        r = serve.runSharded(wl, cfg, plan);
    } else {
        Engine engine(dev);
        if (opts.wanted()) {
            ObsConfig oc;
            oc.sampleIntervalCycles = opts.sampleCycles;
            engine.setObservability(oc);
        }
        ServingEngine serve(engine, sc);
        r = serve.run(wl, cfg);
    }
    VP_REQUIRE(r.completed && r.serving,
               name << ": serving run failed under " << r.configName
                    << "\n" << r.failureReason);

    const ServingRunStats& s = *r.serving;
    std::cout << label << ": " << TextTable::num(r.ms, 3) << " ms  ["
              << r.configName << "]\n";
    std::cout << "serving: " << s.epochs << " epochs of "
              << TextTable::num(s.epochCycles, 0) << " cycles, "
              << s.offered << " offered / " << s.admitted
              << " admitted / " << s.shed << " shed / " << s.completed
              << " completed (" << s.outstanding << " open), "
              << TextTable::num(s.throughputPerMCycle, 2)
              << " req/Mcycle\n";
    const bool deadlines = opts.serveDeadline > 0.0;
    if (deadlines)
        std::cout << "deadlines: "
                  << TextTable::num(opts.serveDeadline, 0)
                  << " cycles/request, " << s.deadlineMisses
                  << " missed, hit-rate "
                  << TextTable::num(100.0 * s.deadlineHitRate, 2)
                  << "%\n";
    std::vector<std::string> cols = {
        "tenant", "prio", "offered", "admitted", "shed",
        "completed", "p50 ms", "p99 ms", "slo p99"};
    if (deadlines)
        cols.push_back("deadline");
    TextTable t(cols);
    for (std::size_t i = 0; i < s.tenants.size(); ++i) {
        const TenantServeStats& ts = s.tenants[i];
        std::string verdict = ts.sloP99Cycles <= 0.0 ? "-"
            : (ts.sloP99Ok ? "ok" : "VIOLATED");
        if (!deadlines && ts.sloP99Cycles > 0.0
            && ts.deadlineMisses > 0)
            verdict += " (" + std::to_string(ts.deadlineMisses)
                + " late)";
        std::vector<std::string> row = {
            ts.name,
            std::to_string(sc.tenants[i].priority),
            std::to_string(ts.offered),
            std::to_string(ts.admitted),
            std::to_string(ts.shed),
            std::to_string(ts.completed),
            TextTable::num(dev.cyclesToMs(ts.p50Cycles), 4),
            TextTable::num(dev.cyclesToMs(ts.p99Cycles), 4),
            verdict};
        if (deadlines)
            row.push_back(
                TextTable::num(100.0 * ts.deadlineHitRate, 2) + "% ("
                + std::to_string(ts.deadlineMisses) + " late)");
        t.addRow(row);
    }
    std::cout << t.render();
    std::cout << "\n";
    if (opts.wanted())
        exportObs(r, dev, opts);
}

void
show(const std::string& name, const DeviceConfig& dev,
     const ObsOptions& opts, bool instrument)
{
    int devices = opts.devices;
    std::string where = dev.name;
    if (devices > 1)
        where += " x" + std::to_string(devices)
            + " shard=" + opts.shard;
    header(name + " on " + where);
    auto app = makeApp(name);
    struct Entry { std::string label; PipelineConfig cfg; };
    auto want = [&](const std::string& label) {
        return !instrument || !opts.only || opts.config == label;
    };
    std::vector<Entry> entries;
    if (want("baseline"))
        entries.push_back({"baseline", baselineConfig(*app, dev)});
    if (want("megakernel"))
        entries.push_back(
            {"megakernel", makeMegakernelConfig(app->pipeline())});
    if (want("versapipe"))
        entries.push_back({"versapipe", versapipeConfig(name, dev)});
    AdaptiveConfig ac;
    ac.enabled = opts.adaptive;
    if (opts.adaptiveEpoch > 0.0)
        ac.epochCycles = opts.adaptiveEpoch;
    for (auto& [label, cfg] : entries) {
        bool observe = instrument && opts.config == label;
        bool sharded = devices > 1
            && cfg.top == PipelineConfig::Top::Groups;
        bool adapt = opts.adaptive && adaptiveApplicable(cfg);
        RunResult r;
        if (sharded) {
            Engine engine(
                DeviceGroupConfig::homogeneous(dev, devices));
            engine.setHostThreads(opts.hostThreads);
            if (observe) {
                ObsConfig oc;
                oc.sampleIntervalCycles = opts.sampleCycles;
                oc.provenance = opts.provWanted();
                oc.provenanceSampleEvery = opts.provSample;
                engine.setObservability(oc);
            }
            if (adapt)
                engine.setAdaptive(ac);
            if (opts.chaos()) {
                engine.setFaultPlan(opts.faults);
                engine.setRecovery(RecoveryConfig{});
            }
            Pipeline& pipe = app->pipeline();
            ShardPlan plan = opts.shard == "rr"
                ? ShardPlan::pinnedRoundRobin(cfg, pipe, devices)
                : ShardPlan::parse(opts.shard, pipe, devices);
            r = engine.runSharded(*app, cfg, plan);
            // Chaos runs legitimately finish Degraded; anything
            // else failing is still fatal.
            VP_REQUIRE(r.completed
                           || (opts.chaos()
                               && r.outcome == RunOutcome::Degraded),
                       app->name()
                       << ": sharded run failed under "
                       << r.configName << "\n" << r.failureReason);
        } else if (observe || adapt) {
            Engine engine(dev);
            if (observe) {
                ObsConfig oc;
                oc.sampleIntervalCycles = opts.sampleCycles;
                oc.provenance = opts.provWanted();
                oc.provenanceSampleEvery = opts.provSample;
                engine.setObservability(oc);
            }
            if (adapt)
                engine.setAdaptive(ac);
            r = engine.run(*app, cfg);
            VP_REQUIRE(r.completed, app->name()
                       << ": verification failed under "
                       << r.configName);
        } else {
            r = runOn(*app, dev, cfg);
        }
        std::cout << label << ": " << TextTable::num(r.ms, 3)
                  << " ms  [" << r.configName << "]\n";
        TextTable t({"stage", "items", "batches", "exec ms",
                     "queue ops ms", "contention ms", "max depth"});
        for (const auto& s : r.stages) {
            t.addRow({s.name, std::to_string(s.items),
                      std::to_string(s.batches),
                      TextTable::num(dev.cyclesToMs(s.execCycles), 3),
                      TextTable::num(
                          dev.cyclesToMs(s.queue.opCycles), 3),
                      TextTable::num(
                          dev.cyclesToMs(s.queue.contentionCycles),
                          3),
                      std::to_string(s.queue.maxDepth)});
        }
        std::cout << t.render();
        std::cout << "launches=" << r.device.kernelLaunches
                  << " peakBlocks=" << r.device.peakResidentBlocks
                  << " polls=" << r.polls
                  << " retreats=" << r.retreats
                  << " util=" << TextTable::num(r.smUtilization, 3)
                  << "\n";
        if (adapt)
            std::cout << "adaptive: " << ac.describe() << " epochs="
                      << r.extra.get("adaptiveEpochs") << " moves="
                      << r.extra.get("adaptiveMoves") << "\n";
        if (!r.shardDevices.empty()) {
            for (std::size_t i = 0; i < r.shardDevices.size(); ++i) {
                const ShardDeviceStats& sd = r.shardDevices[i];
                std::cout << "  d" << i << " " << sd.deviceName
                          << ": util="
                          << TextTable::num(sd.smUtilization, 3)
                          << " launches=" << sd.device.kernelLaunches
                          << " peakBlocks="
                          << sd.device.peakResidentBlocks;
                if (sd.failed)
                    std::cout << " FAILED evacuated="
                              << sd.itemsEvacuated;
                if (sd.stagesRehomedIn > 0)
                    std::cout << " adoptedStages="
                              << sd.stagesRehomedIn;
                std::cout << "\n";
            }
            if (r.faults.devicesFailed > 0 || r.faults.linksFailed > 0
                || r.faults.linksDegraded > 0) {
                std::cout << "  failover: outcome="
                          << runOutcomeName(r.outcome)
                          << " devicesFailed="
                          << r.faults.devicesFailed
                          << " linksFailed=" << r.faults.linksFailed
                          << " stagesRehomed="
                          << r.faults.stagesRehomed
                          << " redelivered="
                          << r.faults.transfersRedelivered
                          << " evacuated=" << r.faults.itemsEvacuated
                          << " deadLettered="
                          << r.faults.deadLettered << "\n";
            }
            std::cout << "  interconnect: transfers="
                      << r.interconnect.transfers << " bytes="
                      << TextTable::num(r.interconnect.bytes, 0)
                      << " serialize ms="
                      << TextTable::num(
                             dev.cyclesToMs(
                                 r.interconnect.serializeCycles), 3)
                      << " wait ms="
                      << TextTable::num(
                             dev.cyclesToMs(
                                 r.interconnect.waitCycles), 3)
                      << "\n";
        }
        std::cout << "\n";
        if (observe)
            exportObs(r, dev, opts);
    }
}

} // namespace

int
main(int argc, char** argv)
{
    auto device = parseDeviceArg(argc, argv);
    DeviceConfig dev = DeviceConfig::byName(device.value_or("k20c"));
    std::vector<std::string> apps;
    ObsOptions opts;
    auto flagValue = [&](const std::string& arg,
                         const std::string& flag, int& i,
                         std::string& out) {
        // Accept both --flag=value and --flag value.
        if (arg.rfind(flag + "=", 0) == 0) {
            out = arg.substr(flag.size() + 1);
            return true;
        }
        if (arg == flag && i + 1 < argc) {
            out = argv[++i];
            return true;
        }
        return false;
    };
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::string v;
        if (flagValue(arg, "--trace", i, v)) {
            opts.tracePath = v;
        } else if (flagValue(arg, "--report", i, v)) {
            opts.reportPath = v;
        } else if (flagValue(arg, "--csv", i, v)) {
            opts.csvPath = v;
        } else if (flagValue(arg, "--config", i, v)) {
            opts.config = v;
        } else if (flagValue(arg, "--sample", i, v)) {
            opts.sampleCycles = std::stod(v);
        } else if (flagValue(arg, "--devices", i, v)) {
            opts.devices = std::stoi(v);
            VP_REQUIRE(opts.devices >= 1,
                       "--devices wants a positive count");
        } else if (flagValue(arg, "--shard", i, v)) {
            opts.shard = v;
        } else if (flagValue(arg, "--host-threads", i, v)) {
            opts.hostThreads = std::stoi(v);
            VP_REQUIRE(opts.hostThreads >= 1,
                       "--host-threads wants a positive count");
        } else if (flagValue(arg, "--kill-device", i, v)) {
            opts.faults.deviceEvents.push_back(parseKillDevice(v));
        } else if (flagValue(arg, "--fail-link", i, v)) {
            opts.faults.linkEvents.push_back(parseFailLink(v));
        } else if (arg == "--latency") {
            opts.latency = true;
        } else if (arg == "--critical-path") {
            opts.criticalPath = 10;
        } else if (arg.rfind("--critical-path=", 0) == 0) {
            opts.criticalPath = std::stoi(
                arg.substr(std::string("--critical-path=").size()));
            VP_REQUIRE(opts.criticalPath >= 0,
                       "--critical-path wants a non-negative count");
        } else if (arg == "--flow") {
            opts.flow = true;
        } else if (flagValue(arg, "--prov-sample", i, v)) {
            opts.provSample =
                static_cast<std::uint64_t>(std::stoull(v));
            VP_REQUIRE(opts.provSample >= 1,
                       "--prov-sample wants K >= 1");
        } else if (arg == "--serve") {
            opts.serve = true;
        } else if (flagValue(arg, "--tenants", i, v)) {
            opts.serveTenants = std::stoi(v);
            VP_REQUIRE(opts.serveTenants >= 1,
                       "--tenants wants a positive count");
        } else if (flagValue(arg, "--rate", i, v)) {
            opts.serveRate = std::stod(v);
            VP_REQUIRE(opts.serveRate > 0.0,
                       "--rate wants requests/kcycle > 0");
        } else if (flagValue(arg, "--epoch", i, v)) {
            opts.serveEpoch = std::stod(v);
            VP_REQUIRE(opts.serveEpoch > 0.0,
                       "--epoch wants a positive cycle count");
        } else if (flagValue(arg, "--horizon", i, v)) {
            opts.serveHorizon = std::stod(v);
            VP_REQUIRE(opts.serveHorizon > 0.0,
                       "--horizon wants a positive cycle count");
        } else if (flagValue(arg, "--deadline", i, v)) {
            opts.serveDeadline = std::stod(v);
            VP_REQUIRE(opts.serveDeadline > 0.0,
                       "--deadline wants a positive cycle count");
        } else if (flagValue(arg, "--overload", i, v)) {
            VP_REQUIRE(v == "shed" || v == "queue",
                       "--overload wants shed|queue, got `" << v
                       << "`");
            opts.serveOverload = v == "queue" ? OverloadPolicy::Queue
                                              : OverloadPolicy::Shed;
        } else if (arg == "--adaptive") {
            opts.adaptive = true;
        } else if (arg.rfind("--adaptive=", 0) == 0) {
            opts.adaptive = true;
            opts.adaptiveEpoch =
                std::stod(arg.substr(std::string("--adaptive=")
                                         .size()));
        } else if (arg == "--only") {
            opts.only = true;
        } else if (arg.rfind("--", 0) != 0) {
            apps.push_back(arg);
        }
    }
    if (opts.wanted() && opts.sampleCycles <= 0.0)
        opts.sampleCycles = 1000.0;
    VP_REQUIRE(!opts.chaos() || opts.devices > 1,
               "--kill-device/--fail-link script multi-device "
               "failover; add --devices=N with N > 1");
    if (opts.serve) {
        // Serving mode replaces the batch sweeps; default to one
        // representative app rather than the whole registry.
        if (apps.empty())
            apps = {"pyramid"};
        for (const std::string& name : apps)
            serveApp(name, dev, opts);
        return 0;
    }
    if (apps.empty())
        apps = appNames();
    bool first = true;
    for (const std::string& name : apps) {
        show(name, dev, opts, first && opts.wanted());
        first = false;
    }
    return 0;
}

/**
 * @file
 * Extension ablations beyond the paper's evaluation:
 *
 *  1. Distributed per-SM work queues with stealing — the direction
 *     sec 8.5 proposes for reducing queue overhead — versus the
 *     central per-stage queues, on the queue-heaviest apps.
 *  2. Task-scheduler fetch policies (sec 5's low-level control):
 *     later-stage-first vs earlier-stage-first vs longest-queue.
 *  3. The online idle-SM refill adaptation on recursive workloads.
 */

#include <iostream>

#include "bench_util.hh"

using namespace vp;
using namespace vp::bench;

int
main(int argc, char** argv)
{
    auto device = parseDeviceArg(argc, argv);
    DeviceConfig dev = DeviceConfig::byName(device.value_or("k20c"));

    header("Ablation 1: central vs distributed work queues ("
           + dev.name + ")");
    TextTable dq({"app", "central ms", "contention ms",
                  "distributed ms", "contention ms ", "steals"});
    for (const std::string& name :
         std::vector<std::string>{"reyes", "facedetect", "ldpc"}) {
        auto app = makeApp(name);
        PipelineConfig central = versapipeConfig(name, dev);
        central.distributedQueues = false;
        PipelineConfig dist = central;
        dist.distributedQueues = true;

        RunResult c = runOn(*app, dev, central);
        RunResult d = runOn(*app, dev, dist);
        auto contention = [&](const RunResult& r) {
            double total = 0.0;
            for (const auto& s : r.stages)
                total += s.queue.contentionCycles;
            return dev.cyclesToMs(total);
        };
        dq.addRow({name, TextTable::num(c.ms, 3),
                   TextTable::num(contention(c), 3),
                   TextTable::num(d.ms, 3),
                   TextTable::num(contention(d), 3),
                   TextTable::num(d.extra.get("steals"), 0)});
    }
    std::cout << dq.render();
    std::cout << "\nsec 8.5: \"more efficient queue schemes (e.g., "
              << "distributed queues...) could help\" — sharding "
              << "cuts contention; stealing rebalances.\n";

    header("Ablation 2: task-scheduler fetch policy");
    TextTable sched({"app", "later-first ms", "earlier-first ms",
                     "longest-queue ms"});
    for (const std::string& name :
         std::vector<std::string>{"reyes", "facedetect"}) {
        auto app = makeApp(name);
        PipelineConfig cfg = makeMegakernelConfig(app->pipeline());
        std::vector<std::string> row = {name};
        for (SchedulePolicy p : {SchedulePolicy::LaterStageFirst,
                                 SchedulePolicy::EarlierStageFirst,
                                 SchedulePolicy::LongestQueueFirst}) {
            cfg.schedule = p;
            row.push_back(TextTable::num(runOn(*app, dev, cfg).ms,
                                         3));
        }
        sched.addRow(row);
    }
    std::cout << sched.render();
    std::cout << "\nlater-stage-first bounds queue growth on "
              << "recursive pipelines (Fig. 8's priority order).\n";

    header("Ablation 3: online idle-SM refill adaptation");
    TextTable online({"app", "static ms", "adaptive ms", "refills"});
    for (const std::string& name :
         std::vector<std::string>{"reyes", "pyramid", "facedetect"}) {
        auto app = makeApp(name);
        PipelineConfig cfg = versapipeConfig(name, dev);
        RunResult stat = runOn(*app, dev, cfg);
        PipelineConfig adaptive = cfg;
        adaptive.onlineAdaptation = true;
        RunResult adapt = runOn(*app, dev, adaptive);
        online.addRow({name, TextTable::num(stat.ms, 3),
                       TextTable::num(adapt.ms, 3),
                       std::to_string(adapt.refills)});
    }
    std::cout << online.render();
    return 0;
}

/**
 * @file
 * Section 8.5 reproduction: overhead analysis. For each application,
 * compares the VersaPipe time against the longest single stage (the
 * no-queuing lower bound of Table 2) and breaks out work-queue
 * costs. The paper's findings: overhead is 10% or less on Face
 * Detection / CFD / Rasterization, visible on Pyramid (short
 * kernels), and largest on Reyes (272-byte items).
 */

#include <iostream>

#include "bench_util.hh"

using namespace vp;
using namespace vp::bench;

int
main(int argc, char** argv)
{
    auto device = parseDeviceArg(argc, argv);
    DeviceConfig dev = DeviceConfig::byName(device.value_or("k20c"));
    header("Section 8.5: overhead analysis (" + dev.name + ")");

    TextTable table({"app", "versa ms", "longest stage ms",
                     "queue ops ms", "contention ms", "itemSz",
                     "queue ms per 1k items"});
    for (const std::string& name : paperAppNames()) {
        auto app = makeApp(name);
        PipelineConfig cfg = versapipeConfig(name, dev);
        RunResult r = runOn(*app, dev, cfg);
        double longest = longestStageMs(r, dev, cfg,
                                        app->pipeline());
        double queue_cycles = 0.0, contention = 0.0;
        std::uint64_t items = 0;
        int item_bytes = 0;
        for (std::size_t s = 0; s < r.stages.size(); ++s) {
            queue_cycles += r.stages[s].queue.opCycles;
            contention += r.stages[s].queue.contentionCycles;
            items += r.stages[s].items;
            item_bytes = std::max(
                item_bytes,
                app->pipeline().stage(static_cast<int>(s))
                    .itemBytes());
        }
        double qms = dev.cyclesToMs(queue_cycles);
        table.addRow({name, TextTable::num(r.ms),
                      TextTable::num(longest),
                      TextTable::num(qms, 3),
                      TextTable::num(dev.cyclesToMs(contention), 3),
                      std::to_string(item_bytes) + "B",
                      TextTable::num(items ? qms * 1000.0 / items
                                           : 0.0, 4)});
    }
    std::cout << table.render();
    std::cout << "\npaper: queuing overhead largest for Reyes (272 B "
              << "items), visible on Pyramid (very short kernels), "
              << "10% or less elsewhere.\n";
    return 0;
}

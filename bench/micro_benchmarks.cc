/**
 * @file
 * Google-benchmark micro-benchmarks of the substrate: event engine
 * throughput, occupancy calculator, SM processor sharing, and
 * work-queue operations. These guard the simulator's own
 * performance (host wall time), not modeled GPU time.
 */

#include <benchmark/benchmark.h>

#include <functional>

#include "gpu/occupancy.hh"
#include "gpu/sm.hh"
#include "queueing/work_queue.hh"
#include "sim/simulator.hh"

namespace {

using namespace vp;

void
BM_EventQueueChain(benchmark::State& state)
{
    for (auto _ : state) {
        Simulator sim;
        int depth = 0;
        std::function<void()> chain = [&] {
            if (++depth < 1000)
                sim.after(1.0, chain);
        };
        sim.after(1.0, chain);
        sim.run();
        benchmark::DoNotOptimize(depth);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueChain);

void
BM_EventQueueFanout(benchmark::State& state)
{
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        Simulator sim;
        for (int i = 0; i < n; ++i)
            sim.at(double(i % 97), [] {});
        sim.run();
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueFanout)->Arg(1000)->Arg(10000);

void
BM_OccupancyCalculator(benchmark::State& state)
{
    DeviceConfig cfg = DeviceConfig::k20c();
    ResourceUsage res;
    int regs = 16;
    for (auto _ : state) {
        res.regsPerThread = regs;
        regs = regs % 255 + 1;
        auto r = maxBlocksPerSm(cfg, res, 256);
        benchmark::DoNotOptimize(r.blocksPerSm);
    }
}
BENCHMARK(BM_OccupancyCalculator);

void
BM_SmProcessorSharing(benchmark::State& state)
{
    DeviceConfig cfg = DeviceConfig::k20c();
    const int execs = static_cast<int>(state.range(0));
    for (auto _ : state) {
        Simulator sim;
        Sm sm(sim, cfg, 0);
        WorkSpec w;
        w.warpInsts = 1000.0;
        w.warps = 8.0;
        w.memRatio = 0.2;
        w.l1Hit = 0.5;
        for (int i = 0; i < execs; ++i)
            sm.beginWork(w, 0, [] {});
        sim.run();
    }
    state.SetItemsProcessed(state.iterations() * execs);
}
BENCHMARK(BM_SmProcessorSharing)->Arg(4)->Arg(16);

void
BM_WorkQueuePushPop(benchmark::State& state)
{
    WorkQueue<int> q("bench");
    for (auto _ : state) {
        for (int i = 0; i < 256; ++i)
            q.push(i);
        std::vector<int> out;
        q.popBatch(out, 256);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_WorkQueuePushPop);

void
BM_QueueAccessCost(benchmark::State& state)
{
    DeviceConfig cfg = DeviceConfig::k20c();
    WorkQueue<int> q("bench");
    double now = 0.0;
    for (auto _ : state) {
        now += 10.0;
        benchmark::DoNotOptimize(q.accessCost(cfg, now, 8));
    }
}
BENCHMARK(BM_QueueAccessCost);

} // namespace

BENCHMARK_MAIN();

/**
 * @file
 * Simulation-core throughput benchmark: host-side events/sec of the
 * event engine (synthetic schedule/dispatch/cancel mixes and the
 * Fig. 11 applications end-to-end) and auto-tuner wall clock, serial
 * vs. multi-threaded sweep. Writes BENCH_simcore.json next to the
 * working directory for trend tracking.
 *
 * These numbers measure the simulator itself (host wall time), not
 * the modeled GPU: on the end-to-end rows the stage payloads (image
 * filters, rasterization...) run on the host inside stage execution,
 * so engine improvements show up strongest on the synthetic rows and
 * on queue/poll-heavy configurations.
 *
 * Usage: bench_simcore [--smoke]
 *   --smoke   cut the workloads to run in a couple of seconds (used
 *             by the bench_smoke ctest entry).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "apps/registry.hh"
#include "apps/vidstream/vidstream_app.hh"
#include "bench_util.hh"
#include "core/engine.hh"
#include "core/versapipe.hh"
#include "gpu/device.hh"
#include "gpu/host.hh"
#include "serve/serving_engine.hh"
#include "sim/simulator.hh"
#include "tuner/offline_tuner.hh"

namespace {

using namespace vp;
using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Row
{
    std::string name;
    double seconds = 0.0;
    double eventsPerSec = 0.0;
    std::uint64_t events = 0;
};

/** Self-rescheduling chain: pure schedule + dispatch. */
struct Chain
{
    Simulator* sim;
    std::uint64_t* budget;
    int id;

    void
    step()
    {
        if (*budget == 0)
            return;
        --*budget;
        sim->after(1.0 + (id & 7), [this] { step(); });
    }
};

/** Cancel + reschedule per event, like Sm::reschedule. */
struct ReschedChain
{
    Simulator* sim;
    std::uint64_t* budget;
    EventHandle pending;
    int id;

    void
    step()
    {
        if (*budget == 0)
            return;
        --*budget;
        sim->cancel(pending);
        pending = sim->after(2.0 + (id & 3), [this] { step(); });
        sim->after(1.0, [this] { step(); });
    }
};

Row
benchChain(std::uint64_t events)
{
    Simulator sim;
    std::uint64_t budget = events;
    std::vector<Chain> chains(256);
    for (int i = 0; i < 256; ++i) {
        chains[i] = Chain{&sim, &budget, i};
        sim.after(1.0 + (i & 7), [c = &chains[i]] { c->step(); });
    }
    auto t0 = Clock::now();
    sim.run();
    Row r;
    r.name = "engine/chain";
    r.seconds = secondsSince(t0);
    r.events = sim.eventsRun();
    r.eventsPerSec = r.events / r.seconds;
    return r;
}

Row
benchResched(std::uint64_t events)
{
    Simulator sim;
    std::uint64_t budget = events;
    std::vector<ReschedChain> chains(128);
    for (int i = 0; i < 128; ++i) {
        chains[i] = ReschedChain{&sim, &budget, EventHandle{}, i};
        sim.after(1.0, [c = &chains[i]] { c->step(); });
    }
    auto t0 = Clock::now();
    sim.run();
    Row r;
    r.name = "engine/resched";
    r.seconds = secondsSince(t0);
    r.events = sim.eventsRun();
    r.eventsPerSec = r.events / r.seconds;
    return r;
}

/**
 * End-to-end events/sec of one app under the Megakernel model. App
 * construction, seeding-state reset and verification stay outside
 * the timed region; only runner start + event loop are timed.
 */
Row
benchApp(const std::string& app, AppScale scale, int reps)
{
    auto driver = makeApp(app, scale);
    DeviceConfig cfg = DeviceConfig::k20c();
    Pipeline& pipe = driver->pipeline();
    PipelineConfig config = makeMegakernelConfig(pipe);
    pipe.validate();
    config.validate(pipe, cfg);

    Row r;
    r.name = "app/" + app;
    for (int i = 0; i < reps; ++i) {
        driver->reset();
        pipe.resetStages();
        Simulator sim;
        Device dev(sim, cfg);
        Host host(sim, dev);
        auto runner = makeRunner(sim, dev, host, pipe, config);
        auto t0 = Clock::now();
        runner->start(*driver);
        sim.run();
        r.seconds += secondsSince(t0);
        r.events += sim.eventsRun();
    }
    r.eventsPerSec = r.events / r.seconds;
    return r;
}

struct FaultModeRow
{
    std::string app;
    std::uint64_t events = 0;
    double plainSeconds = 0.0;
    double disabledSeconds = 0.0;
    /** disabled/plain wall ratio (1.0 = injection is free). */
    double ratio = 0.0;
    bool eventsMatch = false;
};

/**
 * Overhead of the fault-injection layer when it is compiled in but
 * the plan injects nothing: the runtime must take the plain batch
 * path and produce a bit-identical event trace. Wall time is the
 * min over interleaved reps (robust against CPU drift); the event
 * counts must match exactly.
 */
FaultModeRow
benchFaultMode(const std::string& app, int reps)
{
    Engine plain(DeviceConfig::k20c());
    Engine armed(DeviceConfig::k20c());
    armed.setFaultPlan(FaultPlan{}); // nothing enabled

    FaultModeRow row;
    row.app = app;
    row.plainSeconds = 1e30;
    row.disabledSeconds = 1e30;
    std::uint64_t plainEvents = 0, disabledEvents = 0;
    for (int i = 0; i < reps; ++i) {
        {
            auto driver = makeApp(app, AppScale::Small);
            auto t0 = Clock::now();
            RunResult r = plain.run(*driver,
                                    makeMegakernelConfig(
                                        driver->pipeline()));
            row.plainSeconds =
                std::min(row.plainSeconds, secondsSince(t0));
            plainEvents = r.simEvents;
        }
        {
            auto driver = makeApp(app, AppScale::Small);
            auto t0 = Clock::now();
            RunResult r = armed.run(*driver,
                                    makeMegakernelConfig(
                                        driver->pipeline()));
            row.disabledSeconds =
                std::min(row.disabledSeconds, secondsSince(t0));
            disabledEvents = r.simEvents;
        }
    }
    row.events = plainEvents;
    row.eventsMatch = plainEvents == disabledEvents;
    row.ratio = row.disabledSeconds / row.plainSeconds;
    return row;
}

struct ObsModeRow
{
    std::string app;
    std::uint64_t events = 0;
    double plainSeconds = 0.0;
    double disabledSeconds = 0.0;
    /** disabled/plain wall ratio (1.0 = tracing-off is free). */
    double ratio = 0.0;
    bool eventsMatch = false;
};

/**
 * Overhead of the observability layer when it is armed but inert
 * (tracing disabled, sampling off): every hook collapses to a null
 * tracer check, and the run must produce a bit-identical event
 * trace. Same methodology as benchFaultMode: min wall time over
 * interleaved reps, exact event-count comparison.
 */
ObsModeRow
benchObsMode(const std::string& app, int reps)
{
    Engine plain(DeviceConfig::k20c());
    Engine armed(DeviceConfig::k20c());
    ObsConfig oc;
    oc.trace = false;
    oc.sampleIntervalCycles = 0.0;
    armed.setObservability(oc);

    ObsModeRow row;
    row.app = app;
    row.plainSeconds = 1e30;
    row.disabledSeconds = 1e30;
    std::uint64_t plainEvents = 0, disabledEvents = 0;
    for (int i = 0; i < reps; ++i) {
        {
            auto driver = makeApp(app, AppScale::Small);
            auto t0 = Clock::now();
            RunResult r = plain.run(*driver,
                                    makeMegakernelConfig(
                                        driver->pipeline()));
            row.plainSeconds =
                std::min(row.plainSeconds, secondsSince(t0));
            plainEvents = r.simEvents;
        }
        {
            auto driver = makeApp(app, AppScale::Small);
            auto t0 = Clock::now();
            RunResult r = armed.run(*driver,
                                    makeMegakernelConfig(
                                        driver->pipeline()));
            row.disabledSeconds =
                std::min(row.disabledSeconds, secondsSince(t0));
            disabledEvents = r.simEvents;
        }
    }
    row.events = plainEvents;
    row.eventsMatch = plainEvents == disabledEvents;
    row.ratio = row.disabledSeconds / row.plainSeconds;
    return row;
}

struct ProvRow
{
    std::string app;
    std::uint64_t events = 0;
    double plainSeconds = 0.0;
    double armedSeconds = 0.0;
    /** armed/plain wall ratio (tracking is host-side bookkeeping). */
    double ratio = 0.0;
    bool eventsMatch = false;
    bool cyclesMatch = false;
    std::uint64_t itemsTracked = 0;
};

/**
 * Overhead of per-item provenance tracking when armed (every seed
 * tracked, tracing off). Recording is passive — the armed run must
 * reproduce the plain run's event count and cycle count exactly; the
 * wall cost of the host-side lineage bookkeeping is budgeted at 5%.
 */
ProvRow
benchProvenance(const std::string& app, int reps)
{
    Engine plain(DeviceConfig::k20c());
    Engine armed(DeviceConfig::k20c());
    ObsConfig oc;
    oc.trace = false;
    oc.sampleIntervalCycles = 0.0;
    oc.provenance = true;
    armed.setObservability(oc);

    ProvRow row;
    row.app = app;
    row.plainSeconds = 1e30;
    row.armedSeconds = 1e30;
    std::uint64_t plainEvents = 0, armedEvents = 0;
    double plainCycles = 0.0, armedCycles = 0.0;
    for (int i = 0; i < reps; ++i) {
        {
            auto driver = makeApp(app, AppScale::Small);
            auto t0 = Clock::now();
            RunResult r = plain.run(*driver,
                                    makeMegakernelConfig(
                                        driver->pipeline()));
            row.plainSeconds =
                std::min(row.plainSeconds, secondsSince(t0));
            plainEvents = r.simEvents;
            plainCycles = r.cycles;
        }
        {
            auto driver = makeApp(app, AppScale::Small);
            auto t0 = Clock::now();
            RunResult r = armed.run(*driver,
                                    makeMegakernelConfig(
                                        driver->pipeline()));
            row.armedSeconds =
                std::min(row.armedSeconds, secondsSince(t0));
            armedEvents = r.simEvents;
            armedCycles = r.cycles;
            row.itemsTracked = r.obs->provenance->records().size();
        }
    }
    row.events = plainEvents;
    row.eventsMatch = plainEvents == armedEvents;
    row.cyclesMatch = plainCycles == armedCycles;
    row.ratio = row.armedSeconds / row.plainSeconds;
    return row;
}

struct ShardRow
{
    std::string app;
    /** Simulated cycles, one device vs. the 2-device group. */
    double singleCycles = 0.0;
    double groupCycles = 0.0;
    double speedup = 0.0;
    double seconds = 0.0;
    std::uint64_t events = 0;
    std::uint64_t transfers = 0;
    /** Per-stage item totals match the single-device run. */
    bool conserved = false;
    /** A rerun of the group reproduces cycles and event count. */
    bool deterministic = false;
};

/**
 * Multi-device sharding: the same app under the same Megakernel
 * configuration on one GTX 1080 and on a 2x GTX 1080 group with the
 * replicate plan. Reports the simulated-time speedup, checks exact
 * work conservation against the single-device run, and reruns the
 * group to confirm bit-identical determinism. Host wall time of the
 * group run is also recorded (the simulator now carries two devices'
 * events in one heap).
 */
ShardRow
benchShard(const std::string& app, AppScale scale)
{
    DeviceConfig dev = DeviceConfig::byName("gtx1080");
    auto stageItems = [](const RunResult& r) {
        std::vector<std::uint64_t> v;
        for (const auto& s : r.stages)
            v.push_back(s.items + s.deadLettered);
        return v;
    };

    ShardRow row;
    row.app = app;

    auto driver = makeApp(app, scale);
    PipelineConfig cfg = makeMegakernelConfig(driver->pipeline());
    ShardPlan plan = ShardPlan::replicateAll(driver->pipeline());

    Engine single(dev);
    RunResult r1 = single.run(*driver, cfg);

    Engine group(DeviceGroupConfig::homogeneous(dev, 2));
    auto t0 = Clock::now();
    RunResult r2 = group.runSharded(*driver, cfg, plan);
    row.seconds = secondsSince(t0);
    RunResult r3 = group.runSharded(*driver, cfg, plan);

    row.singleCycles = r1.cycles;
    row.groupCycles = r2.cycles;
    row.speedup = r2.cycles > 0.0 ? r1.cycles / r2.cycles : 0.0;
    row.events = r2.simEvents;
    row.transfers = r2.interconnect.transfers;
    row.conserved = r1.completed && r2.completed
        && stageItems(r1) == stageItems(r2);
    row.deterministic = r2.cycles == r3.cycles
        && r2.simEvents == r3.simEvents
        && stageItems(r2) == stageItems(r3);
    return row;
}

struct HostParallelRow
{
    std::string app;
    /** One entry per host-thread count swept (1, 2, 4). */
    std::vector<int> threads;
    std::vector<double> seconds;
    std::vector<double> eventsPerSec;
    std::vector<std::uint64_t> events;
    /** Wall-clock speedup of N threads over the serial loop. */
    double speedup2 = 0.0;
    double speedup4 = 0.0;
    /** Cycles, event counts and per-stage work identical across
     *  every thread count (the exact tier's contract). */
    bool identical = false;
    unsigned cores = 0;
};

/**
 * Host-parallel group loop: the same 2-device replicate run driven
 * by 1 (serial group loop), 2 and 4 host threads. The replicate plan
 * takes the exact tier, so every sweep must report bit-identical
 * simulated results; the wall-clock speedup is the whole point of
 * the parallel loop and is asserted (>= 1.4x at 2 threads) only when
 * the machine actually has 2+ hardware threads — on a single-core
 * host the sweep still gates determinism.
 */
HostParallelRow
benchHostParallel(const std::string& app, AppScale scale)
{
    DeviceConfig dev = DeviceConfig::byName("gtx1080");
    auto stageItems = [](const RunResult& r) {
        std::vector<std::uint64_t> v;
        for (const auto& s : r.stages)
            v.push_back(s.items + s.deadLettered);
        return v;
    };

    HostParallelRow row;
    row.app = app;
    row.cores = std::thread::hardware_concurrency();

    auto driver = makeApp(app, scale);
    PipelineConfig cfg = makeMegakernelConfig(driver->pipeline());
    ShardPlan plan = ShardPlan::replicateAll(driver->pipeline());

    std::vector<RunResult> results;
    for (int threads : {1, 2, 4}) {
        Engine group(DeviceGroupConfig::homogeneous(dev, 2));
        group.setHostThreads(threads);
        auto t0 = Clock::now();
        RunResult r = group.runSharded(*driver, cfg, plan);
        double secs = secondsSince(t0);
        row.threads.push_back(threads);
        row.seconds.push_back(secs);
        row.events.push_back(r.simEvents);
        row.eventsPerSec.push_back(
            secs > 0.0 ? static_cast<double>(r.simEvents) / secs
                       : 0.0);
        results.push_back(std::move(r));
    }

    row.identical = true;
    for (const RunResult& r : results)
        row.identical = row.identical && r.completed
            && r.cycles == results[0].cycles
            && r.simEvents == results[0].simEvents
            && stageItems(r) == stageItems(results[0]);
    row.speedup2 = row.seconds[1] > 0.0
        ? row.seconds[0] / row.seconds[1]
        : 0.0;
    row.speedup4 = row.seconds[2] > 0.0
        ? row.seconds[0] / row.seconds[2]
        : 0.0;
    return row;
}

struct TunerRow
{
    std::string app;
    int threads = 0;
    double seconds = 0.0;
    double bestCycles = 0.0;
};

TunerRow
benchTunerSerial(const std::string& app)
{
    Engine engine(DeviceConfig::k20c());
    auto driver = makeApp(app, AppScale::Small);
    auto t0 = Clock::now();
    TunerResult r = autotune(engine, *driver);
    TunerRow row;
    row.app = app;
    row.threads = 1;
    row.seconds = secondsSince(t0);
    row.bestCycles = r.bestRun.cycles;
    return row;
}

// ---------------------------------------------------------------- //
// Adaptive load-balance controller                                 //
// ---------------------------------------------------------------- //

/** Item of the two-phase pipeline below. */
struct PhaseItem
{
    int v = 0;
    /** 0 = front-heavy phase, 1 = back-heavy phase. */
    int phase = 0;
};

struct PhaseBack;

/**
 * Front half of a deliberately phase-skewed two-stage fine pipeline:
 * expensive during phase 0, cheap during phase 1 (PhaseBack is the
 * mirror image). Seeding all phase-0 items before the phase-1 items
 * moves the bottleneck from front to back midway through the run —
 * the situation a static block partition cannot serve well.
 */
struct PhaseFront : Stage<PhaseItem>
{
    double heavyInsts = 3000.0;
    double lightInsts = 300.0;

    PhaseFront()
    {
        name = "front";
        resources.regsPerThread = 32;
        resources.codeBytes = 4000;
        blockThreads = 32; // small batches keep queue depths live
        retryable = true;
    }

    TaskCost
    cost(const PhaseItem& it) const override
    {
        TaskCost c;
        c.computeInsts = it.phase == 0 ? heavyInsts : lightInsts;
        c.memInsts = 20;
        return c;
    }

    void execute(ExecContext& ctx, PhaseItem& it) override;
};

/** Back half: cheap during phase 0, expensive during phase 1. */
struct PhaseBack : Stage<PhaseItem>
{
    double heavyInsts = 3000.0;
    double lightInsts = 300.0;

    PhaseBack()
    {
        name = "back";
        resources.regsPerThread = 32;
        resources.codeBytes = 4000;
        blockThreads = 32;
    }

    TaskCost
    cost(const PhaseItem& it) const override
    {
        TaskCost c;
        c.computeInsts = it.phase == 0 ? lightInsts : heavyInsts;
        c.memInsts = 20;
        return c;
    }

    void
    execute(ExecContext&, PhaseItem&) override
    {
        ++done;
    }

    void reset() override { done = 0; }

    int done = 0;
};

inline void
PhaseFront::execute(ExecContext& ctx, PhaseItem& it)
{
    ctx.enqueue<PhaseBack>(it);
}

/** Two-phase workload; balanced = both phases cost the same. */
class PhaseApp : public AppDriver
{
  public:
    explicit PhaseApp(int perPhase, bool balanced)
        : perPhase_(perPhase)
    {
        pipe_.addStage<PhaseFront>();
        pipe_.addStage<PhaseBack>();
        pipe_.link<PhaseFront, PhaseBack>();
        if (balanced) {
            double mid = 1650.0;
            auto& f = pipe_.stageAs<PhaseFront>();
            auto& b = pipe_.stageAs<PhaseBack>();
            f.heavyInsts = f.lightInsts = mid;
            b.heavyInsts = b.lightInsts = mid;
        }
    }

    std::string name() const override { return "phase-skew"; }

    Pipeline& pipeline() override { return pipe_; }

    void reset() override {}

    void
    seedFlow(Seeder& seeder, int) override
    {
        std::vector<PhaseItem> items;
        for (int p = 0; p < 2; ++p)
            for (int i = 0; i < perPhase_; ++i)
                items.push_back(PhaseItem{i, p});
        seeder.insert<PhaseFront>(std::move(items));
    }

    double inputBytes() const override { return 1 << 14; }

    bool
    verify() override
    {
        return pipe_.stageAs<PhaseBack>().done == 2 * perPhase_;
    }

  private:
    Pipeline pipe_;
    int perPhase_;
};

/**
 * Fine two-stage configuration with an explicit block split, bound
 * to one SM so the block budget — not raw SM count — is the scarce
 * resource the controller trades.
 */
PipelineConfig
fineSplit(int frontBlocks, int backBlocks)
{
    StageGroup g;
    g.stages = {0, 1};
    g.model = ExecModel::FinePipeline;
    g.sms = {0};
    g.blocksPerSm[0] = frontBlocks;
    g.blocksPerSm[1] = backBlocks;
    PipelineConfig cfg;
    cfg.groups = {g};
    return cfg;
}

struct AdaptiveRow
{
    /** Skewed workload: phase-0-tuned static vs adaptive from the
     *  same initial partition. */
    double staticCycles = 0.0;
    double adaptiveCycles = 0.0;
    double gain = 0.0; //!< staticCycles / adaptiveCycles
    double moves = 0.0;
    /** Balanced workload: best static split vs adaptive. */
    double balancedStaticCycles = 0.0;
    double balancedAdaptiveCycles = 0.0;
    double balancedRatio = 0.0; //!< adaptive / best static
    /** Two adaptive runs are bit-identical. */
    bool deterministic = false;
    /** A disabled AdaptiveConfig leaves the event trace untouched. */
    bool disabledIdentical = false;
    std::uint64_t events = 0;
    double plainSeconds = 0.0;
    double disabledSeconds = 0.0;
    double disabledRatio = 0.0;
};

/**
 * The online load-balance controller on a workload whose bottleneck
 * moves mid-run: front-heavy for the first half of the items,
 * back-heavy for the second. The static partition is the one an
 * offline tuner would pick for phase 0 (front-weighted); the
 * controller starts from the same partition and must rebalance.
 * Also measures the disabled-config overhead with the interleaved
 * min-wall methodology of benchFaultMode.
 */
AdaptiveRow
benchAdaptive(bool smoke)
{
    DeviceConfig dev = DeviceConfig::k20c();
    int perPhase = smoke ? 1500 : 6000;
    AdaptiveConfig ac;
    ac.enabled = true;
    ac.epochCycles = 25000.0;
    ac.hysteresis = 0.25;
    ac.minDwellEpochs = 1;

    AdaptiveRow row;

    // Skewed: static phase-0 partition vs adaptive from the same.
    PipelineConfig wrongPhase = fineSplit(6, 2);
    {
        PhaseApp app(perPhase, false);
        Engine eng(dev);
        row.staticCycles = eng.run(app, wrongPhase).cycles;

        eng.setAdaptive(ac);
        RunResult a1 = eng.run(app, wrongPhase);
        RunResult a2 = eng.run(app, wrongPhase);
        row.adaptiveCycles = a1.cycles;
        row.moves = a1.extra.get("adaptiveMoves");
        row.gain = a1.cycles > 0.0
            ? row.staticCycles / a1.cycles
            : 0.0;
        row.deterministic = a1.cycles == a2.cycles
            && a1.simEvents == a2.simEvents;
    }

    // Balanced: the controller should not lose to the best static
    // split when there is nothing to fix.
    {
        PhaseApp app(perPhase, true);
        Engine eng(dev);
        row.balancedStaticCycles =
            std::numeric_limits<double>::infinity();
        for (int front = 3; front <= 5; ++front) {
            double c =
                eng.run(app, fineSplit(front, 8 - front)).cycles;
            row.balancedStaticCycles =
                std::min(row.balancedStaticCycles, c);
        }
        eng.setAdaptive(ac);
        row.balancedAdaptiveCycles =
            eng.run(app, fineSplit(4, 4)).cycles;
        row.balancedRatio = row.balancedAdaptiveCycles
            / row.balancedStaticCycles;
    }

    // Disabled-config overhead: armed-but-disabled must take the
    // untouched fast path (bit-identical events, wall ratio ~1).
    {
        Engine plain(dev);
        Engine armed(dev);
        armed.setAdaptive(AdaptiveConfig{}); // disabled
        row.plainSeconds = 1e30;
        row.disabledSeconds = 1e30;
        std::uint64_t plainEvents = 0, disabledEvents = 0;
        int reps = smoke ? 3 : 10;
        for (int i = 0; i < reps; ++i) {
            {
                PhaseApp app(perPhase, false);
                auto t0 = Clock::now();
                RunResult r = plain.run(app, wrongPhase);
                row.plainSeconds =
                    std::min(row.plainSeconds, secondsSince(t0));
                plainEvents = r.simEvents;
            }
            {
                PhaseApp app(perPhase, false);
                auto t0 = Clock::now();
                RunResult r = armed.run(app, wrongPhase);
                row.disabledSeconds =
                    std::min(row.disabledSeconds, secondsSince(t0));
                disabledEvents = r.simEvents;
            }
        }
        row.events = plainEvents;
        row.disabledIdentical = plainEvents == disabledEvents;
        row.disabledRatio = row.disabledSeconds / row.plainSeconds;
    }
    return row;
}

struct ServingRow
{
    std::string app;
    std::uint64_t epochs = 0;
    std::uint64_t offered = 0;
    std::uint64_t admitted = 0;
    std::uint64_t shed = 0;
    std::uint64_t completed = 0;
    std::uint64_t outstanding = 0;
    /** Simulated end-to-end time of the serving run. */
    double cycles = 0.0;
    std::uint64_t events = 0;
    /** Completed requests per million simulated cycles. */
    double throughputPerMCycle = 0.0;
    /** Host wall time of the serving run and the wall-relative
     *  request rate it sustained. */
    double seconds = 0.0;
    double requestsPerSec = 0.0;
    std::vector<TenantServeStats> tenants;
    /** offered == admitted + shed and admitted == completed +
     *  outstanding, per tenant and in total. */
    bool conserved = false;
    /** A rerun reproduces cycles, events and every serving stat. */
    bool deterministic = false;
    /** ServingEngine with a disabled ServeConfig produces an event-
     *  and cycle-identical run to a plain engine. */
    bool disabledIdentical = false;
};

/**
 * Pipeline-as-a-service: a fixed offered load (three open-loop
 * tenants at different priorities and token-bucket quotas, the
 * lowest deliberately over its quota so shedding is exercised)
 * served by the pyramid app under the Megakernel model — request k
 * seeds image flow k mod images. Reports sustained throughput and
 * per-tenant p99, and gates the serving layer's core contracts:
 * per-tenant conservation, bit-identical reruns, and the disabled
 * config degenerating to the plain one-shot run.
 */
ServingRow
benchServing(const std::string& app, bool smoke)
{
    DeviceConfig dev = DeviceConfig::byName("gtx1080");

    ServeConfig sc;
    sc.seed = 2026;
    sc.epochCycles = 5000.0;
    sc.horizonCycles = smoke ? 150000.0 : 600000.0;
    sc.overload = OverloadPolicy::Shed;
    auto tenant = [](const char* name, int prio, double rate,
                     double burst, double mean) {
        TenantConfig t;
        t.name = name;
        t.priority = prio;
        t.tokensPerCycle = rate;
        t.burstTokens = burst;
        ClientConfig c;
        c.kind = ArrivalKind::OpenLoop;
        c.meanInterarrivalCycles = mean;
        t.clients.push_back(c);
        return t;
    };
    sc.tenants.push_back(tenant("gold", 2, 0.004, 8.0, 12000.0));
    sc.tenants.push_back(tenant("silver", 1, 0.002, 4.0, 15000.0));
    // Bronze offers ~1 request / 9k cycles against a 1 / 20k-cycle
    // quota: the token bucket must shed the excess.
    sc.tenants.push_back(tenant("bronze", 0, 0.00005, 1.0, 9000.0));

    auto serveOnce = [&](double* secs) {
        auto driver = makeApp(app, AppScale::Small);
        FlowServingWorkload wl(*driver);
        Engine eng(dev);
        ServingEngine serve(eng, sc);
        auto t0 = Clock::now();
        RunResult r =
            serve.run(wl, makeMegakernelConfig(driver->pipeline()));
        if (secs)
            *secs = secondsSince(t0);
        return r;
    };

    ServingRow row;
    row.app = app;
    RunResult r1 = serveOnce(&row.seconds);
    RunResult r2 = serveOnce(nullptr);

    const ServingRunStats& s = *r1.serving;
    row.epochs = s.epochs;
    row.offered = s.offered;
    row.admitted = s.admitted;
    row.shed = s.shed;
    row.completed = s.completed;
    row.outstanding = s.outstanding;
    row.cycles = r1.cycles;
    row.events = r1.simEvents;
    row.throughputPerMCycle = s.throughputPerMCycle;
    row.requestsPerSec = row.seconds > 0.0
        ? static_cast<double>(s.completed) / row.seconds
        : 0.0;
    row.tenants = s.tenants;

    row.conserved = s.offered == s.admitted + s.shed
        && s.admitted == s.completed + s.outstanding;
    for (const TenantServeStats& t : s.tenants)
        row.conserved = row.conserved
            && t.offered == t.admitted + t.shed
            && t.admitted == t.completed + t.outstanding;

    auto tenantsEqual = [](const std::vector<TenantServeStats>& a,
                           const std::vector<TenantServeStats>& b) {
        if (a.size() != b.size())
            return false;
        for (std::size_t i = 0; i < a.size(); ++i)
            if (a[i].offered != b[i].offered
                || a[i].admitted != b[i].admitted
                || a[i].shed != b[i].shed
                || a[i].completed != b[i].completed
                || a[i].p50Cycles != b[i].p50Cycles
                || a[i].p99Cycles != b[i].p99Cycles)
                return false;
        return true;
    };
    row.deterministic = r1.cycles == r2.cycles
        && r1.simEvents == r2.simEvents && r2.serving
        && s.offered == r2.serving->offered
        && s.completed == r2.serving->completed
        && tenantsEqual(s.tenants, r2.serving->tenants);

    // Disabled parity: a default ServeConfig run must be the plain
    // one-shot run, event for event.
    {
        auto d1 = makeApp(app, AppScale::Small);
        Engine plain(dev);
        RunResult a = plain.run(*d1,
                                makeMegakernelConfig(d1->pipeline()));
        auto d2 = makeApp(app, AppScale::Small);
        FlowServingWorkload wl(*d2);
        Engine eng(dev);
        ServingEngine off(eng, ServeConfig{});
        RunResult b =
            off.run(wl, makeMegakernelConfig(d2->pipeline()));
        row.disabledIdentical = a.simEvents == b.simEvents
            && a.cycles == b.cycles && !b.serving;
    }
    return row;
}

struct VidstreamRow
{
    std::uint64_t offered = 0;
    std::uint64_t admitted = 0;
    std::uint64_t shed = 0;
    /** Frames fully processed (one request = one frame). */
    std::uint64_t frames = 0;
    double cycles = 0.0;
    std::uint64_t events = 0;
    /** Sustained frame rate in simulated time (frames/Mcycle). */
    double framesPerMCycle = 0.0;
    /** Host wall time and the wall-relative frame rate. */
    double seconds = 0.0;
    double framesPerSec = 0.0;
    /** Per-frame deadline verdicts over all cameras. */
    std::uint64_t deadlineMisses = 0;
    double deadlineHitRate = 1.0;
    std::vector<TenantServeStats> tenants;
    bool conserved = false;
    /** Rerun reproduces cycles, events and deadline accounting. */
    bool deterministic = false;
};

/**
 * Streaming video analytics: the vidstream app under the serving
 * layer, one open-loop tenant per camera issuing frames on a frame
 * clock, every tenant carrying the same per-frame deadline. Reports
 * sustained FPS (simulated and wall-relative) and the per-frame
 * deadline hit-rate, and gates conservation plus bit-identical
 * reruns of the full deadline accounting.
 */
VidstreamRow
benchVidstream(bool smoke)
{
    DeviceConfig dev = DeviceConfig::byName("gtx1080");
    vidstream::VsParams p = vidstream::VsParams::small();

    ServeConfig sc;
    sc.seed = 20260808;
    sc.epochCycles = 4000.0;
    sc.horizonCycles = smoke ? 400000.0 : 1600000.0;
    for (int cam = 0; cam < p.cameras; ++cam) {
        TenantConfig tc;
        tc.name = "cam" + std::to_string(cam);
        tc.tokensPerCycle = 0.001;
        tc.burstTokens = 4.0;
        tc.deadlineCycles = 60000.0; // the per-frame budget
        ClientConfig cl;
        cl.kind = ArrivalKind::OpenLoop;
        cl.meanInterarrivalCycles = 40000.0; // the frame clock
        tc.clients.push_back(cl);
        sc.tenants.push_back(tc);
    }

    auto serveOnce = [&](double* secs) {
        vidstream::VidstreamApp app(p);
        vidstream::VsFrameWorkload wl(app);
        Engine eng(dev);
        ServingEngine serve(eng, sc);
        auto t0 = Clock::now();
        RunResult r =
            serve.run(wl, makeMegakernelConfig(app.pipeline()));
        if (secs)
            *secs = secondsSince(t0);
        return r;
    };

    VidstreamRow row;
    RunResult r1 = serveOnce(&row.seconds);
    RunResult r2 = serveOnce(nullptr);

    const ServingRunStats& s = *r1.serving;
    row.offered = s.offered;
    row.admitted = s.admitted;
    row.shed = s.shed;
    row.frames = s.completed;
    row.cycles = r1.cycles;
    row.events = r1.simEvents;
    row.framesPerMCycle = s.throughputPerMCycle;
    row.framesPerSec = row.seconds > 0.0
        ? static_cast<double>(s.completed) / row.seconds
        : 0.0;
    row.deadlineMisses = s.deadlineMisses;
    row.deadlineHitRate = s.deadlineHitRate;
    row.tenants = s.tenants;

    row.conserved = s.offered == s.admitted + s.shed
        && s.admitted == s.completed + s.outstanding;
    for (const TenantServeStats& t : s.tenants)
        row.conserved = row.conserved
            && t.offered == t.admitted + t.shed
            && t.admitted == t.completed + t.outstanding;

    row.deterministic = r1.cycles == r2.cycles
        && r1.simEvents == r2.simEvents && r2.serving
        && s.completed == r2.serving->completed
        && s.deadlineMisses == r2.serving->deadlineMisses
        && s.deadlineHitRate == r2.serving->deadlineHitRate;
    if (row.deterministic)
        for (std::size_t i = 0; i < s.tenants.size(); ++i)
            row.deterministic = row.deterministic
                && s.tenants[i].deadlineMisses
                    == r2.serving->tenants[i].deadlineMisses
                && s.tenants[i].p99Cycles
                    == r2.serving->tenants[i].p99Cycles;
    return row;
}

TunerRow
benchTunerParallel(const std::string& app, int threads)
{
    TunerOptions opts;
    opts.threads = threads;
    auto t0 = Clock::now();
    TunerResult r = autotuneParallel(
        DeviceConfig::k20c(),
        [&app] { return makeApp(app, AppScale::Small); }, opts);
    TunerRow row;
    row.app = app;
    row.threads = threads;
    row.seconds = secondsSince(t0);
    row.bestCycles = r.bestRun.cycles;
    return row;
}

} // namespace

int
main(int argc, char** argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;

    const std::uint64_t engineEvents = smoke ? 200000 : 8000000;
    const int reps = smoke ? 1 : 5;

    std::vector<Row> rows;
    rows.push_back(benchChain(engineEvents));
    rows.push_back(benchResched(engineEvents));
    rows.push_back(benchApp("pyramid", AppScale::Small, reps));
    if (!smoke) {
        rows.push_back(benchApp("raster", AppScale::Full, reps));
        rows.push_back(benchApp("reyes", AppScale::Full, reps));
        rows.push_back(benchApp("ldpc", AppScale::Full, reps));
    }

    vp::bench::header("simulation-core throughput");
    for (const Row& r : rows)
        std::printf("  %-16s %10llu events  %8.3fs  %8.3fM ev/s\n",
                    r.name.c_str(),
                    static_cast<unsigned long long>(r.events),
                    r.seconds, r.eventsPerSec / 1e6);

    vp::bench::header("fault-injection overhead (pyramid, small)");
    FaultModeRow fm = benchFaultMode("pyramid", smoke ? 3 : 20);
    std::printf("  plain             %8.3fms\n"
                "  disabled plan     %8.3fms  ratio=%.4f  "
                "events %s\n",
                fm.plainSeconds * 1e3, fm.disabledSeconds * 1e3,
                fm.ratio, fm.eventsMatch ? "identical" : "DIVERGED");
    if (!fm.eventsMatch) {
        std::fprintf(stderr,
                     "ERROR: disabled fault plan changed the event "
                     "trace\n");
        return 1;
    }
    if (!smoke && fm.ratio >= 1.02) {
        std::fprintf(stderr,
                     "ERROR: disabled fault injection costs %.1f%% "
                     "(budget: <2%%)\n",
                     (fm.ratio - 1.0) * 100.0);
        return 1;
    }

    vp::bench::header("observability overhead (pyramid, small)");
    ObsModeRow om = benchObsMode("pyramid", smoke ? 3 : 20);
    std::printf("  plain             %8.3fms\n"
                "  tracing disabled  %8.3fms  ratio=%.4f  "
                "events %s\n",
                om.plainSeconds * 1e3, om.disabledSeconds * 1e3,
                om.ratio, om.eventsMatch ? "identical" : "DIVERGED");
    if (!om.eventsMatch) {
        std::fprintf(stderr,
                     "ERROR: disabled tracing changed the event "
                     "trace\n");
        return 1;
    }
    if (!smoke && om.ratio >= 1.02) {
        std::fprintf(stderr,
                     "ERROR: disabled tracing costs %.1f%% "
                     "(budget: <2%%)\n",
                     (om.ratio - 1.0) * 100.0);
        return 1;
    }

    vp::bench::header("provenance overhead (pyramid, small)");
    ProvRow pr = benchProvenance("pyramid", smoke ? 3 : 20);
    std::printf("  plain             %8.3fms\n"
                "  provenance armed  %8.3fms  ratio=%.4f  "
                "events %s  cycles %s  items=%llu\n",
                pr.plainSeconds * 1e3, pr.armedSeconds * 1e3,
                pr.ratio, pr.eventsMatch ? "identical" : "DIVERGED",
                pr.cyclesMatch ? "identical" : "DIVERGED",
                static_cast<unsigned long long>(pr.itemsTracked));
    if (!pr.eventsMatch || !pr.cyclesMatch) {
        std::fprintf(stderr,
                     "ERROR: armed provenance changed the %s\n",
                     pr.eventsMatch ? "cycle count" : "event trace");
        return 1;
    }
    if (!smoke && pr.ratio >= 1.05) {
        std::fprintf(stderr,
                     "ERROR: armed provenance costs %.1f%% "
                     "(budget: <5%%)\n",
                     (pr.ratio - 1.0) * 100.0);
        return 1;
    }

    vp::bench::header("multi-device sharding (raster, 2x gtx1080)");
    ShardRow sh = benchShard(
        "raster", smoke ? AppScale::Small : AppScale::Full);
    std::printf("  1 device          %12.0f cycles\n"
                "  2 devices         %12.0f cycles  speedup=%.2fx  "
                "%8.3fs host\n"
                "  transfers=%llu  work %s  reruns %s\n",
                sh.singleCycles, sh.groupCycles, sh.speedup,
                sh.seconds,
                static_cast<unsigned long long>(sh.transfers),
                sh.conserved ? "conserved" : "NOT CONSERVED",
                sh.deterministic ? "bit-identical" : "DIVERGED");
    if (!sh.conserved || !sh.deterministic) {
        std::fprintf(stderr,
                     "ERROR: 2-device shard %s\n",
                     sh.conserved ? "rerun diverged"
                                  : "lost or duplicated work");
        return 1;
    }
    if (!smoke && sh.speedup <= 1.0) {
        std::fprintf(stderr,
                     "ERROR: 2 devices slower than 1 (%.2fx) on a "
                     "throughput workload\n",
                     sh.speedup);
        return 1;
    }

    vp::bench::header(
        "host-parallel group loop (raster, 2x gtx1080, replicate)");
    HostParallelRow hp = benchHostParallel(
        "raster", smoke ? AppScale::Small : AppScale::Full);
    for (std::size_t i = 0; i < hp.threads.size(); ++i)
        std::printf("  %d host thread%s    %8.3fs  %8.3fM ev/s\n",
                    hp.threads[i], hp.threads[i] == 1 ? " " : "s",
                    hp.seconds[i], hp.eventsPerSec[i] / 1e6);
    std::printf("  speedup x2=%.2f x4=%.2f  (%u hardware threads)  "
                "results %s\n",
                hp.speedup2, hp.speedup4, hp.cores,
                hp.identical ? "bit-identical" : "DIVERGED");
    if (!hp.identical) {
        std::fprintf(stderr,
                     "ERROR: host-parallel runs diverged from the "
                     "serial group loop\n");
        return 1;
    }
    if (!smoke && hp.cores >= 2 && hp.speedup2 < 1.4) {
        std::fprintf(stderr,
                     "ERROR: host-parallel speedup %.2fx at 2 "
                     "threads on a %u-thread host (budget: "
                     ">=1.4x)\n",
                     hp.speedup2, hp.cores);
        return 1;
    }

    vp::bench::header("adaptive load balancing (phase-skew, fine)");
    AdaptiveRow ad = benchAdaptive(smoke);
    std::printf("  static (wrong)    %12.0f cycles\n"
                "  adaptive          %12.0f cycles  gain=%.2fx  "
                "moves=%.0f  reruns %s\n"
                "  balanced          %12.0f vs best static %.0f  "
                "ratio=%.4f\n"
                "  disabled          ratio=%.4f  events %s\n",
                ad.staticCycles, ad.adaptiveCycles, ad.gain, ad.moves,
                ad.deterministic ? "bit-identical" : "DIVERGED",
                ad.balancedAdaptiveCycles, ad.balancedStaticCycles,
                ad.balancedRatio, ad.disabledRatio,
                ad.disabledIdentical ? "identical" : "DIVERGED");
    if (!ad.disabledIdentical) {
        std::fprintf(stderr,
                     "ERROR: disabled adaptive config changed the "
                     "event trace\n");
        return 1;
    }
    if (!ad.deterministic) {
        std::fprintf(stderr,
                     "ERROR: adaptive reruns diverged\n");
        return 1;
    }
    if (ad.gain < 1.10) {
        std::fprintf(stderr,
                     "ERROR: adaptive gain %.2fx on the skewed "
                     "workload (budget: >=1.10x)\n",
                     ad.gain);
        return 1;
    }
    if (ad.balancedRatio > 1.02) {
        std::fprintf(stderr,
                     "ERROR: adaptive is %.1f%% behind the best "
                     "static split on a balanced workload "
                     "(budget: <=2%%)\n",
                     (ad.balancedRatio - 1.0) * 100.0);
        return 1;
    }
    if (!smoke && ad.disabledRatio >= 1.02) {
        std::fprintf(stderr,
                     "ERROR: disabled adaptive config costs %.1f%% "
                     "(budget: <2%%)\n",
                     (ad.disabledRatio - 1.0) * 100.0);
        return 1;
    }

    vp::bench::header("serving layer (pyramid, 3 tenants, open loop)");
    ServingRow sv = benchServing("pyramid", smoke);
    std::printf("  %llu epochs  offered=%llu admitted=%llu "
                "shed=%llu completed=%llu\n"
                "  %12.0f cycles  %8.3fs host  %8.1f req/s  "
                "%.2f req/Mcycle\n",
                static_cast<unsigned long long>(sv.epochs),
                static_cast<unsigned long long>(sv.offered),
                static_cast<unsigned long long>(sv.admitted),
                static_cast<unsigned long long>(sv.shed),
                static_cast<unsigned long long>(sv.completed),
                sv.cycles, sv.seconds, sv.requestsPerSec,
                sv.throughputPerMCycle);
    for (const TenantServeStats& t : sv.tenants)
        std::printf("  %-8s offered=%-4llu shed=%-4llu "
                    "p50=%-8.0f p99=%-8.0f cycles\n",
                    t.name.c_str(),
                    static_cast<unsigned long long>(t.offered),
                    static_cast<unsigned long long>(t.shed),
                    t.p50Cycles, t.p99Cycles);
    std::printf("  work %s  reruns %s  disabled config %s\n",
                sv.conserved ? "conserved" : "NOT CONSERVED",
                sv.deterministic ? "bit-identical" : "DIVERGED",
                sv.disabledIdentical ? "identical" : "DIVERGED");
    if (!sv.conserved) {
        std::fprintf(stderr,
                     "ERROR: serving run lost or duplicated "
                     "requests\n");
        return 1;
    }
    if (!sv.deterministic) {
        std::fprintf(stderr, "ERROR: serving reruns diverged\n");
        return 1;
    }
    if (!sv.disabledIdentical) {
        std::fprintf(stderr,
                     "ERROR: disabled ServeConfig changed the event "
                     "trace\n");
        return 1;
    }
    if (sv.shed == 0) {
        std::fprintf(stderr,
                     "ERROR: the over-quota tenant shed nothing — "
                     "admission control is not engaging\n");
        return 1;
    }

    vp::bench::header(
        "streaming video analytics (vidstream, frame deadlines)");
    VidstreamRow vs = benchVidstream(smoke);
    std::printf("  offered=%llu admitted=%llu shed=%llu "
                "frames=%llu\n"
                "  %12.0f cycles  %8.3fs host  %8.1f fps(wall)  "
                "%.2f frames/Mcycle\n"
                "  deadline misses=%llu  hit-rate=%.4f\n",
                static_cast<unsigned long long>(vs.offered),
                static_cast<unsigned long long>(vs.admitted),
                static_cast<unsigned long long>(vs.shed),
                static_cast<unsigned long long>(vs.frames),
                vs.cycles, vs.seconds, vs.framesPerSec,
                vs.framesPerMCycle,
                static_cast<unsigned long long>(vs.deadlineMisses),
                vs.deadlineHitRate);
    for (const TenantServeStats& t : vs.tenants)
        std::printf("  %-8s frames=%-4llu misses=%-4llu "
                    "hit-rate=%.4f  p99=%-8.0f cycles\n",
                    t.name.c_str(),
                    static_cast<unsigned long long>(t.completed),
                    static_cast<unsigned long long>(t.deadlineMisses),
                    t.deadlineHitRate, t.p99Cycles);
    std::printf("  work %s  reruns %s\n",
                vs.conserved ? "conserved" : "NOT CONSERVED",
                vs.deterministic ? "bit-identical" : "DIVERGED");
    if (!vs.conserved) {
        std::fprintf(stderr,
                     "ERROR: vidstream serving lost or duplicated "
                     "frames\n");
        return 1;
    }
    if (!vs.deterministic) {
        std::fprintf(stderr,
                     "ERROR: vidstream deadline accounting diverged "
                     "across reruns\n");
        return 1;
    }
    if (vs.frames == 0) {
        std::fprintf(stderr,
                     "ERROR: vidstream completed no frames\n");
        return 1;
    }

    vp::bench::header("auto-tuner wall clock (pyramid, small)");
    TunerRow serial = benchTunerSerial("pyramid");
    TunerRow par = benchTunerParallel("pyramid", smoke ? 2 : 4);
    std::printf("  serial            %8.3fs  best=%.0f cycles\n",
                serial.seconds, serial.bestCycles);
    std::printf("  %d threads         %8.3fs  best=%.0f cycles  "
                "speedup=%.2fx\n",
                par.threads, par.seconds, par.bestCycles,
                serial.seconds / par.seconds);
    if (serial.bestCycles != par.bestCycles) {
        std::fprintf(stderr,
                     "ERROR: parallel tuner best (%f) != serial "
                     "best (%f)\n",
                     par.bestCycles, serial.bestCycles);
        return 1;
    }

    std::FILE* json = std::fopen("BENCH_simcore.json", "w");
    if (json) {
        // scripts/bench_compare.py refuses to diff a smoke run
        // against a full baseline (and vice versa), so record which
        // shape this file is.
        std::fprintf(json, "{\n  \"smoke\": %s,\n  \"rows\": [\n",
                     smoke ? "true" : "false");
        for (std::size_t i = 0; i < rows.size(); ++i)
            std::fprintf(
                json,
                "    {\"name\": \"%s\", \"events\": %llu, "
                "\"seconds\": %.6f, \"events_per_sec\": %.1f}%s\n",
                rows[i].name.c_str(),
                static_cast<unsigned long long>(rows[i].events),
                rows[i].seconds, rows[i].eventsPerSec,
                i + 1 < rows.size() ? "," : "");
        std::fprintf(json,
                     "  ],\n  \"fault_mode\": {\"app\": \"%s\", "
                     "\"events\": %llu, \"events_identical\": %s, "
                     "\"plain_seconds\": %.6f, "
                     "\"disabled_seconds\": %.6f, "
                     "\"overhead_ratio\": %.4f},\n",
                     fm.app.c_str(),
                     static_cast<unsigned long long>(fm.events),
                     fm.eventsMatch ? "true" : "false",
                     fm.plainSeconds, fm.disabledSeconds, fm.ratio);
        std::fprintf(json,
                     "  \"obs_mode\": {\"app\": \"%s\", "
                     "\"events\": %llu, \"events_identical\": %s, "
                     "\"plain_seconds\": %.6f, "
                     "\"disabled_seconds\": %.6f, "
                     "\"overhead_ratio\": %.4f},\n",
                     om.app.c_str(),
                     static_cast<unsigned long long>(om.events),
                     om.eventsMatch ? "true" : "false",
                     om.plainSeconds, om.disabledSeconds, om.ratio);
        std::fprintf(json,
                     "  \"provenance\": {\"app\": \"%s\", "
                     "\"events\": %llu, \"events_identical\": %s, "
                     "\"cycles_identical\": %s, "
                     "\"items_tracked\": %llu, "
                     "\"plain_seconds\": %.6f, "
                     "\"armed_seconds\": %.6f, "
                     "\"overhead_ratio\": %.4f},\n",
                     pr.app.c_str(),
                     static_cast<unsigned long long>(pr.events),
                     pr.eventsMatch ? "true" : "false",
                     pr.cyclesMatch ? "true" : "false",
                     static_cast<unsigned long long>(pr.itemsTracked),
                     pr.plainSeconds, pr.armedSeconds, pr.ratio);
        std::fprintf(json,
                     "  \"multi_device\": {\"app\": \"%s\", "
                     "\"devices\": 2, \"plan\": \"replicate\", "
                     "\"single_cycles\": %.1f, "
                     "\"group_cycles\": %.1f, \"speedup\": %.4f, "
                     "\"events\": %llu, \"transfers\": %llu, "
                     "\"group_seconds\": %.6f, "
                     "\"work_conserved\": %s, "
                     "\"reruns_identical\": %s},\n",
                     sh.app.c_str(), sh.singleCycles, sh.groupCycles,
                     sh.speedup,
                     static_cast<unsigned long long>(sh.events),
                     static_cast<unsigned long long>(sh.transfers),
                     sh.seconds, sh.conserved ? "true" : "false",
                     sh.deterministic ? "true" : "false");
        std::fprintf(json,
                     "  \"host_parallel\": {\"app\": \"%s\", "
                     "\"devices\": 2, \"plan\": \"replicate\", "
                     "\"hardware_threads\": %u, "
                     "\"results_identical\": %s, "
                     "\"speedup_2\": %.4f, \"speedup_4\": %.4f, "
                     "\"sweep\": [",
                     hp.app.c_str(), hp.cores,
                     hp.identical ? "true" : "false", hp.speedup2,
                     hp.speedup4);
        for (std::size_t i = 0; i < hp.threads.size(); ++i)
            std::fprintf(json,
                         "{\"host_threads\": %d, \"seconds\": %.6f, "
                         "\"events\": %llu, "
                         "\"events_per_sec\": %.1f}%s",
                         hp.threads[i], hp.seconds[i],
                         static_cast<unsigned long long>(
                             hp.events[i]),
                         hp.eventsPerSec[i],
                         i + 1 < hp.threads.size() ? ", " : "");
        std::fprintf(json, "]},\n");
        std::fprintf(json,
                     "  \"adaptive\": {\"app\": \"phase-skew\", "
                     "\"static_cycles\": %.1f, "
                     "\"adaptive_cycles\": %.1f, \"gain\": %.4f, "
                     "\"moves\": %.0f, "
                     "\"balanced_static_cycles\": %.1f, "
                     "\"balanced_adaptive_cycles\": %.1f, "
                     "\"balanced_ratio\": %.4f, "
                     "\"reruns_identical\": %s, "
                     "\"disabled_events_identical\": %s, "
                     "\"disabled_overhead_ratio\": %.4f},\n",
                     ad.staticCycles, ad.adaptiveCycles, ad.gain,
                     ad.moves, ad.balancedStaticCycles,
                     ad.balancedAdaptiveCycles, ad.balancedRatio,
                     ad.deterministic ? "true" : "false",
                     ad.disabledIdentical ? "true" : "false",
                     ad.disabledRatio);
        std::fprintf(json,
                     "  \"serving\": {\"app\": \"%s\", "
                     "\"epochs\": %llu, \"offered\": %llu, "
                     "\"admitted\": %llu, \"shed\": %llu, "
                     "\"completed\": %llu, \"outstanding\": %llu, "
                     "\"sim_cycles\": %.1f, \"events\": %llu, "
                     "\"throughput_per_mcycle\": %.4f, "
                     "\"serve_seconds\": %.6f, "
                     "\"requests_per_sec\": %.1f, "
                     "\"work_conserved\": %s, "
                     "\"reruns_identical\": %s, "
                     "\"disabled_events_identical\": %s, "
                     "\"tenants\": [",
                     sv.app.c_str(),
                     static_cast<unsigned long long>(sv.epochs),
                     static_cast<unsigned long long>(sv.offered),
                     static_cast<unsigned long long>(sv.admitted),
                     static_cast<unsigned long long>(sv.shed),
                     static_cast<unsigned long long>(sv.completed),
                     static_cast<unsigned long long>(sv.outstanding),
                     sv.cycles,
                     static_cast<unsigned long long>(sv.events),
                     sv.throughputPerMCycle, sv.seconds,
                     sv.requestsPerSec,
                     sv.conserved ? "true" : "false",
                     sv.deterministic ? "true" : "false",
                     sv.disabledIdentical ? "true" : "false");
        for (std::size_t i = 0; i < sv.tenants.size(); ++i) {
            const TenantServeStats& t = sv.tenants[i];
            std::fprintf(json,
                         "{\"name\": \"%s\", \"offered\": %llu, "
                         "\"admitted\": %llu, \"shed\": %llu, "
                         "\"completed\": %llu, "
                         "\"p50_cycles\": %.2f, "
                         "\"p99_cycles\": %.2f}%s",
                         t.name.c_str(),
                         static_cast<unsigned long long>(t.offered),
                         static_cast<unsigned long long>(t.admitted),
                         static_cast<unsigned long long>(t.shed),
                         static_cast<unsigned long long>(t.completed),
                         t.p50Cycles, t.p99Cycles,
                         i + 1 < sv.tenants.size() ? ", " : "");
        }
        std::fprintf(json, "]},\n");
        std::fprintf(json,
                     "  \"vidstream\": {\"app\": \"vidstream\", "
                     "\"offered\": %llu, \"admitted\": %llu, "
                     "\"shed\": %llu, \"frames\": %llu, "
                     "\"sim_cycles\": %.1f, \"events\": %llu, "
                     "\"frames_per_mcycle\": %.4f, "
                     "\"serve_seconds\": %.6f, "
                     "\"frames_per_sec\": %.1f, "
                     "\"deadline_misses\": %llu, "
                     "\"deadline_hit_rate\": %.6f, "
                     "\"work_conserved\": %s, "
                     "\"reruns_identical\": %s, "
                     "\"tenants\": [",
                     static_cast<unsigned long long>(vs.offered),
                     static_cast<unsigned long long>(vs.admitted),
                     static_cast<unsigned long long>(vs.shed),
                     static_cast<unsigned long long>(vs.frames),
                     vs.cycles,
                     static_cast<unsigned long long>(vs.events),
                     vs.framesPerMCycle, vs.seconds,
                     vs.framesPerSec,
                     static_cast<unsigned long long>(
                         vs.deadlineMisses),
                     vs.deadlineHitRate,
                     vs.conserved ? "true" : "false",
                     vs.deterministic ? "true" : "false");
        for (std::size_t i = 0; i < vs.tenants.size(); ++i) {
            const TenantServeStats& t = vs.tenants[i];
            std::fprintf(
                json,
                "{\"name\": \"%s\", \"frames\": %llu, "
                "\"deadline_misses\": %llu, "
                "\"deadline_hit_rate\": %.6f, "
                "\"p50_cycles\": %.2f, \"p99_cycles\": %.2f}%s",
                t.name.c_str(),
                static_cast<unsigned long long>(t.completed),
                static_cast<unsigned long long>(t.deadlineMisses),
                t.deadlineHitRate, t.p50Cycles, t.p99Cycles,
                i + 1 < vs.tenants.size() ? ", " : "");
        }
        std::fprintf(json, "]},\n");
        std::fprintf(json,
                     "  \"tuner\": {\"app\": \"%s\", "
                     "\"serial_seconds\": %.6f, "
                     "\"parallel_threads\": %d, "
                     "\"parallel_seconds\": %.6f, "
                     "\"best_cycles\": %.1f}\n}\n",
                     serial.app.c_str(), serial.seconds, par.threads,
                     par.seconds, serial.bestCycles);
        std::fclose(json);
        std::printf("\nwrote BENCH_simcore.json\n");
    }
    return 0;
}

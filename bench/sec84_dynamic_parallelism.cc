/**
 * @file
 * Section 8.4 reproduction: CUDA Dynamic Parallelism on Reyes versus
 * VersaPipe. The paper measures 110.6 ms (K20c) and 45.2 ms
 * (GTX 1080) for DP — over 10x slower than VersaPipe — due to
 * per-item sub-kernel launch overhead.
 */

#include <iostream>

#include "bench_util.hh"

using namespace vp;
using namespace vp::bench;

int
main(int argc, char** argv)
{
    auto only = parseDeviceArg(argc, argv);
    header("Section 8.4: Dynamic Parallelism vs VersaPipe (Reyes)");

    TextTable table({"device", "dp ms", "versa ms", "dp/versa",
                     "dp kernel launches", "paper dp/versa"});
    for (const std::string& name :
         std::vector<std::string>{"k20c", "gtx1080"}) {
        if (only && *only != name)
            continue;
        DeviceConfig dev = DeviceConfig::byName(name);
        auto app = makeApp("reyes");
        RunResult dp = runOn(*app, dev,
                             makeDynamicParallelismConfig());
        RunResult vp = runOn(*app, dev,
                             versapipeConfig("reyes", dev));
        double paper = name == "k20c" ? 110.6 / 7.7 : 45.2 / 3.0;
        table.addRow({name, TextTable::num(dp.ms),
                      TextTable::num(vp.ms),
                      TextTable::num(dp.ms / vp.ms) + "x",
                      std::to_string(dp.device.kernelLaunches),
                      TextTable::num(paper) + "x"});
    }
    std::cout << table.render();
    std::cout << "\npaper: DP is >10x slower than VersaPipe due to "
              << "sub-kernel launch overhead (echoing [9, 14, 49]).\n";
    return 0;
}

/**
 * @file
 * Section 7 reproduction: auto-tuner behavior. Shows the offline
 * search (evaluated / pruned-by-timeout counts, the best hybrid
 * configurations found per application), an ablation restricting the
 * search space (no hybrid grouping, i.e., single-group configs
 * only), and the online adaptation's effect.
 */

#include <algorithm>
#include <iostream>

#include "bench_util.hh"

using namespace vp;
using namespace vp::bench;

int
main(int argc, char** argv)
{
    auto device = parseDeviceArg(argc, argv);
    DeviceConfig dev = DeviceConfig::byName(device.value_or("k20c"));
    header("Section 7: offline auto-tuner (" + dev.name + ")");

    TextTable table({"app", "evaluated", "timed out", "best config",
                     "best ms", "best single-group ms",
                     "hybrid gain"});
    for (const std::string& name : paperAppNames()) {
        auto app = makeApp(name, AppScale::Small);
        Engine engine(dev);
        TunerOptions opts;
        opts.search.smCandidates = 4;
        opts.search.blockCandidates = 6;
        opts.search.maxConfigs = 300;
        TunerResult tuned = autotune(engine, *app, opts);

        // Ablation: single-group (whole-pipeline) configs only.
        double best_single = 0.0;
        bool have_single = false;
        for (const auto& [desc, cycles] : tuned.finished) {
            if (desc.find(" | ") != std::string::npos)
                continue; // hybrid (multi-group)
            if (!have_single || cycles < best_single) {
                best_single = cycles;
                have_single = true;
            }
        }
        double best_single_ms =
            have_single ? dev.cyclesToMs(best_single) : 0.0;
        double gain = have_single && tuned.bestRun.ms > 0.0
            ? best_single_ms / tuned.bestRun.ms
            : 1.0;
        table.addRow({name, std::to_string(tuned.evaluated),
                      std::to_string(tuned.timedOut),
                      tuned.best.describe(app->pipeline()),
                      TextTable::num(tuned.bestRun.ms, 3),
                      TextTable::num(best_single_ms, 3),
                      TextTable::num(gain) + "x"});
    }
    std::cout << table.render();

    header("Section 7: online adaptation (idle-SM refill)");
    TextTable online({"app", "static ms", "adaptive ms", "refills"});
    for (const std::string& name :
         std::vector<std::string>{"pyramid", "reyes"}) {
        auto app = makeApp(name);
        PipelineConfig cfg = versapipeConfig(name, dev);
        RunResult stat = runOn(*app, dev, cfg);
        PipelineConfig adaptive = cfg;
        adaptive.onlineAdaptation = true;
        RunResult adapt = runOn(*app, dev, adaptive);
        online.addRow({name, TextTable::num(stat.ms, 3),
                       TextTable::num(adapt.ms, 3),
                       std::to_string(adapt.refills)});
    }
    std::cout << online.render();
    std::cout << "\npaper: the tuner discovers per-app hybrid "
              << "groupings (e.g., Pyramid = coarse {grayscale} + "
              << "fine {histeq,resize}); the online tuner refills "
              << "drained SMs with the most-backlogged stage "
              << "group.\n";
    return 0;
}

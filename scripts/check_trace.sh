#!/usr/bin/env bash
# End-to-end observability check (ctest entry `trace_export`, label
# `obs`): run the raster app through inspect_app with trace, report
# and lineage-flow export enabled, then lint the trace (including
# flow-event pairing) with scripts/trace_lint.py and sanity-check the
# report's percentiles and provenance section.
#
# Usage: check_trace.sh <inspect_app-binary> <scripts-dir>
set -euo pipefail

inspect="$1"
scripts="$2"
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

"$inspect" raster --only --config=megakernel \
    --trace="$workdir/trace.json" \
    --report="$workdir/report.json" \
    --csv="$workdir/series.csv" \
    --sample=1000 --flow > "$workdir/stdout.txt"

python3 "$scripts/trace_lint.py" "$workdir/trace.json"

# --flow arms provenance: the trace must carry lineage flow arrows
# (validated above) and the report the provenance section.
python3 - "$workdir/trace.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    events = json.load(f)["traceEvents"]
starts = sum(1 for e in events if e.get("ph") == "s")
finishes = sum(1 for e in events if e.get("ph") == "f")
assert starts > 0, "no flow start events in a --flow trace"
assert starts == finishes, "unbalanced flows (%d s, %d f)" % (
    starts, finishes)
print("trace.json: OK (%d lineage flows)" % starts)
EOF

# The report must be valid JSON carrying per-stage percentiles and at
# least two sampled time-series.
python3 - "$workdir/report.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
stages = [s for s in report["stages"] if "batch_latency_cycles" in s]
assert stages, "no stage carries batch_latency_cycles"
for s in stages:
    h = s["batch_latency_cycles"]
    if h.get("count", 0) > 0:
        for key in ("p50", "p95", "p99"):
            assert key in h, "stage %s lacks %s" % (s["name"], key)
series = report.get("series", [])
assert len(series) >= 2, "expected >= 2 time-series, got %d" % len(series)
assert any(len(s["t"]) > 0 for s in series), "all time-series are empty"
prov = report.get("provenance")
assert prov, "no provenance section in a --flow report"
assert prov["open"] == 0, "%d lineages never resolved" % prov["open"]
assert prov["decomposition_error"] == 0, "inexact decomposition"
assert prov["critical_path"]["segments"], "empty critical path"
print("report.json: OK (%d stages, %d series, %d tracked items)"
      % (len(stages), len(series), prov["items_tracked"]))
EOF

# The CSV must have a header plus at least one sample row.
lines="$(wc -l < "$workdir/series.csv")"
if [ "$lines" -lt 2 ]; then
    echo "series.csv has no sample rows" >&2
    exit 1
fi
echo "series.csv: OK ($((lines - 1)) rows)"

#!/usr/bin/env python3
"""Diff a fresh bench_simcore JSON against the committed baseline.

Every field of every row is classified and checked:

  * structure: both files must have the same rows and the same keys
    (a vanished row or a renamed field is a regression in itself);
  * booleans and strings (events_identical, work_conserved, app,
    plan, ...): must match the baseline exactly;
  * integer counts (events, transfers, items_tracked, ...): must
    match exactly — the simulation is deterministic, so a changed
    event count means the model changed, not the machine;
  * simulated-cycle floats (single_cycles, gain, speedup, ...):
    must match within --rel-tol (default 1e-9), same reasoning;
  * wall-clock timings (*_seconds, events_per_sec): machine-relative,
    so they only fail when they differ from the baseline by more than
    a factor of --time-factor (default 10);
  * machine-relative ratios (overhead_ratio, speedup_2, ...) and
    hardware_threads: reported, never failed — the bench binary
    already gates those against absolute budgets via its exit code.

Usage: bench_compare.py fresh.json [baseline.json]
The baseline defaults to BENCH_simcore.json next to this script's
repository root. Exit status 0 when the fresh run matches, 1 on any
mismatch, 2 on usage/parse errors.
"""

import json
import os
import sys

# Keys whose values depend on the host machine, never on the model.
TIMING_SUFFIXES = ("seconds", "events_per_sec", "requests_per_sec",
                   "frames_per_sec")
INFO_KEYS = {
    "overhead_ratio",
    "disabled_overhead_ratio",
    "speedup_2",
    "speedup_4",
    "hardware_threads",
}


def is_timing(key):
    return any(key.endswith(s) for s in TIMING_SUFFIXES)


def compare_value(path, fresh, base, opts, errors, infos):
    if isinstance(base, dict):
        if not isinstance(fresh, dict):
            errors.append("%s: expected object, got %r" % (path, fresh))
            return
        for key in sorted(set(base) | set(fresh)):
            sub = "%s.%s" % (path, key)
            if key not in fresh:
                errors.append("%s: missing from fresh run" % sub)
            elif key not in base:
                errors.append("%s: not in baseline (new field? "
                              "refresh the baseline)" % sub)
            elif key in INFO_KEYS:
                infos.append("%s: %r (baseline %r, not gated)"
                             % (sub, fresh[key], base[key]))
            else:
                compare_value(sub, fresh[key], base[key], opts,
                              errors, infos)
    elif isinstance(base, list):
        if not isinstance(fresh, list):
            errors.append("%s: expected array, got %r" % (path, fresh))
        elif len(fresh) != len(base):
            errors.append("%s: %d entries vs %d in baseline"
                          % (path, len(fresh), len(base)))
        else:
            for i, (f, b) in enumerate(zip(fresh, base)):
                compare_value("%s[%d]" % (path, i), f, b, opts,
                              errors, infos)
    elif isinstance(base, bool):
        if fresh is not base:
            errors.append("%s: %r vs baseline %r"
                          % (path, fresh, base))
    elif isinstance(base, (int, float)):
        if not isinstance(fresh, (int, float)) \
                or isinstance(fresh, bool):
            errors.append("%s: non-numeric %r" % (path, fresh))
        elif is_timing(path.rsplit(".", 1)[-1]):
            lo, hi = sorted([abs(fresh), abs(base)])
            if lo > 0 and hi / lo > opts["time_factor"]:
                errors.append(
                    "%s: %g vs baseline %g (off by %.1fx, "
                    "budget %gx)" % (path, fresh, base, hi / lo,
                                     opts["time_factor"]))
        elif isinstance(base, int) and isinstance(fresh, int):
            if fresh != base:
                errors.append("%s: %d vs baseline %d"
                              % (path, fresh, base))
        else:
            scale = max(abs(fresh), abs(base), 1.0)
            if abs(fresh - base) > opts["rel_tol"] * scale:
                errors.append("%s: %g vs baseline %g (rel tol %g)"
                              % (path, fresh, base, opts["rel_tol"]))
    else:  # strings
        if fresh != base:
            errors.append("%s: %r vs baseline %r"
                          % (path, fresh, base))


def match_rows(fresh, base, opts, errors, infos):
    """Top-level `rows` arrays are matched by row name, not index."""
    by_name = {r.get("name"): r for r in base if isinstance(r, dict)}
    seen = set()
    for r in fresh:
        name = r.get("name") if isinstance(r, dict) else None
        if name not in by_name:
            errors.append("rows[%r]: not in baseline" % name)
            continue
        seen.add(name)
        compare_value("rows[%r]" % name, r, by_name[name], opts,
                      errors, infos)
    for name in by_name:
        if name not in seen:
            errors.append("rows[%r]: missing from fresh run" % name)


def main(argv):
    opts = {"rel_tol": 1e-9, "time_factor": 10.0}
    paths = []
    for a in argv[1:]:
        if a.startswith("--rel-tol="):
            opts["rel_tol"] = float(a.split("=", 1)[1])
        elif a.startswith("--time-factor="):
            opts["time_factor"] = float(a.split("=", 1)[1])
        else:
            paths.append(a)
    if not paths or len(paths) > 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    fresh_path = paths[0]
    base_path = paths[1] if len(paths) == 2 else os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_simcore.json")

    docs = []
    for path in (fresh_path, base_path):
        try:
            with open(path, "r", encoding="utf-8") as f:
                docs.append(json.load(f))
        except (OSError, ValueError) as e:
            print("%s: cannot parse: %s" % (path, e), file=sys.stderr)
            return 2
    fresh, base = docs

    errors, infos = [], []
    if fresh.get("smoke") != base.get("smoke"):
        print("%s: smoke=%r but baseline %s has smoke=%r — "
              "regenerate the baseline with the matching mode"
              % (fresh_path, fresh.get("smoke"), base_path,
                 base.get("smoke")), file=sys.stderr)
        return 2

    for key in sorted(set(base) | set(fresh)):
        if key == "smoke":
            continue
        if key not in fresh:
            errors.append("%s: missing from fresh run" % key)
        elif key not in base:
            errors.append("%s: not in baseline (new section? "
                          "refresh the baseline)" % key)
        elif key == "rows":
            match_rows(fresh[key], base[key], opts, errors, infos)
        else:
            compare_value(key, fresh[key], base[key], opts, errors,
                          infos)

    for line in infos:
        print("  note: " + line)
    for line in errors:
        print("MISMATCH " + line, file=sys.stderr)
    if errors:
        print("%s: %d mismatch(es) vs %s"
              % (fresh_path, len(errors), base_path), file=sys.stderr)
        return 1
    print("%s: OK, matches %s" % (fresh_path, base_path))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

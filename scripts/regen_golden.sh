#!/usr/bin/env bash
# Regenerate the golden corpus (tests/golden/*.json) from the current
# build. Run after an intentional change to simulation behavior, then
# review and commit the corpus diff like any other code change.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 4)"

cmake --preset default
cmake --build build -j"$jobs" --target test_golden --target test_serving
GOLDEN_REGEN=1 ./build/tests/test_golden
GOLDEN_REGEN=1 ./build/tests/test_serving \
    --gtest_filter='Serving.GoldenStreamingReport'

git --no-pager diff --stat -- tests/golden || true

#!/usr/bin/env bash
# Tier-1 verification: configure + build + full test suite, then
# rebuild the fault-injection/recovery subset under ASan+UBSan (the
# tests carrying the ctest label `sanitize`) so the closure-heavy
# runtime paths run with memory and UB checking on every change.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 4)"

cmake --preset default
cmake --build build -j"$jobs"
ctest --test-dir build --output-on-failure -j"$jobs"

# Observability checks (also part of the full suite above): unit
# tests plus the end-to-end trace/report export + trace_lint.py pass
# (ctest entry `trace_export`, scripts/check_trace.sh).
ctest --test-dir build -L obs --output-on-failure

# Serving layer (continuous ingest, admission control, SLO tracking):
# the streaming test tier plus the serving lane of the property
# tests (ctest label `serving`, also part of the full suite above).
ctest --test-dir build -L serving --output-on-failure

cmake --preset asan-ubsan
cmake --build build-sanitize -j"$jobs"
ctest --test-dir build-sanitize -L sanitize --output-on-failure -j"$jobs"

# The serving suite again under ASan+UBSan: the serve loop stacks
# closures on the runtime hot path (epoch seeding, wake relaunches,
# provenance-driven completion), exactly what the sanitizers watch.
ctest --test-dir build-sanitize -L serving --output-on-failure

# Reduced chaos smoke under the sanitizers: a handful of randomized
# device/link failover scenarios with memory and UB checking. The
# full 100-seed sweep runs in the plain build (ctest label `chaos`,
# part of the full suite above).
VP_CHAOS_SEEDS=10 ctest --test-dir build-sanitize -L chaos --output-on-failure

#!/usr/bin/env python3
"""Validate a chrome://tracing / Perfetto trace_event JSON file.

Checks, per the trace_event format spec:
  * the file parses as JSON and has a `traceEvents` array;
  * every event carries the required keys for its phase;
  * `ts` is monotonically non-decreasing per (pid, tid) track for
    duration events (B/E) — the exporter sorts, so a violation means
    a broken merge;
  * B/E begin/end events are balanced on every (pid, tid) stack;
  * X complete events have a non-negative `dur`;
  * flow events (s/t/f) carry an `id`, every flow id resolves to
    exactly one start and one finish (steps optional in between),
    and its timestamps are ordered start <= steps <= finish;
  * metadata (M) events are structural and skipped.

Usage: trace_lint.py trace.json [trace2.json ...]
Exit status 0 when every file passes, 1 otherwise.
"""

import json
import sys


def lint(path):
    errors = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        return ["%s: cannot parse: %s" % (path, e)]

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["%s: no `traceEvents` array" % path]

    last_ts = {}   # (pid, tid) -> last B/E timestamp
    depth = {}     # (pid, tid) -> open B count
    flows = {}     # id -> {"s": [ts...], "t": [ts...], "f": [ts...]}
    for i, ev in enumerate(events):
        where = "%s: event %d" % (path, i)
        if not isinstance(ev, dict):
            errors.append("%s: not an object" % where)
            continue
        ph = ev.get("ph")
        if ph is None:
            errors.append("%s: missing `ph`" % where)
            continue
        if ph == "M":
            continue
        for key in ("pid", "tid", "ts", "name"):
            if key not in ev:
                errors.append("%s: missing `%s` (ph=%s)"
                              % (where, key, ph))
        if "ts" not in ev:
            continue
        track = (ev.get("pid"), ev.get("tid"))
        ts = ev["ts"]
        if not isinstance(ts, (int, float)):
            errors.append("%s: non-numeric ts %r" % (where, ts))
            continue
        if ph in ("B", "E"):
            if ts < last_ts.get(track, float("-inf")):
                errors.append(
                    "%s: ts %s goes backwards on track %s"
                    % (where, ts, track))
            last_ts[track] = ts
            d = depth.get(track, 0)
            if ph == "B":
                depth[track] = d + 1
            else:
                if d <= 0:
                    errors.append("%s: E without matching B on "
                                  "track %s" % (where, track))
                else:
                    depth[track] = d - 1
        elif ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append("%s: X with bad dur %r" % (where, dur))
        elif ph in ("s", "t", "f"):
            if "id" not in ev:
                errors.append("%s: flow %s without `id`"
                              % (where, ph))
            else:
                flows.setdefault(ev["id"], {"s": [], "t": [],
                                            "f": []})[ph].append(ts)
        elif ph in ("i", "I"):
            pass
        elif ph == "C":
            if "args" not in ev:
                errors.append("%s: counter without args" % where)
        else:
            errors.append("%s: unknown phase %r" % (where, ph))

    for track, d in sorted(depth.items()):
        if d != 0:
            errors.append("%s: %d unclosed B event(s) on track %s"
                          % (path, d, track))

    for fid, phases in sorted(flows.items(), key=lambda kv: str(kv[0])):
        where = "%s: flow id %r" % (path, fid)
        if len(phases["s"]) != 1:
            errors.append("%s: %d start event(s), want exactly 1"
                          % (where, len(phases["s"])))
        if len(phases["f"]) != 1:
            errors.append("%s: %d finish event(s), want exactly 1"
                          % (where, len(phases["f"])))
        if len(phases["s"]) == 1 and len(phases["f"]) == 1:
            s, f = phases["s"][0], phases["f"][0]
            if not all(s <= t <= f for t in phases["t"]) or s > f:
                errors.append(
                    "%s: timestamps out of order (s=%s t=%s f=%s)"
                    % (where, s, phases["t"], f))
    if not errors:
        n = sum(1 for e in events
                if isinstance(e, dict) and e.get("ph") != "M")
        print("%s: OK (%d events, %d flows)" % (path, n, len(flows)))
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        for err in lint(path):
            print(err, file=sys.stderr)
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
